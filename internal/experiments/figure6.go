package experiments

import (
	"fmt"
	"strings"
)

// Figure6 regenerates Fig. 6: the ShareLatex dependency graph inferred
// from Granger causality between the representative metrics of
// communicating components. The paper highlights that the metric
// appearing in the most relations is web's
// http-requests_Project_id_GET_mean, which it then uses as the
// autoscaling trigger.
func (s *Suite) Figure6() (*Result, error) {
	runs, err := s.shareLatexPipelines()
	if err != nil {
		return nil, err
	}
	graph := runs[0].artifact.Graph

	hub, hubCount := graph.MostFrequentMetric()

	var b strings.Builder
	b.WriteString("Figure 6: ShareLatex dependency graph (Granger relations)\n")
	fmt.Fprintf(&b, "%d metric-level edges across %d component pairs (%d pairs tested, %d bidirectional filtered)\n",
		len(graph.Edges), len(graph.ComponentPairs()), graph.Tested, graph.Bidirectional)
	b.WriteString("\nComponent-level relations:\n")
	for _, p := range graph.ComponentPairs() {
		edges := graph.EdgesBetween(p[0], p[1])
		fmt.Fprintf(&b, "  %-14s -> %-14s (%d metric relations)\n", p[0], p[1], len(edges))
		for i, e := range edges {
			if i >= 2 {
				fmt.Fprintf(&b, "      ... %d more\n", len(edges)-2)
				break
			}
			fmt.Fprintf(&b, "      %s -> %s (lag %dms, p=%.2g)\n", e.FromMetric, e.ToMetric, e.LagMS, e.PValue)
		}
	}
	fmt.Fprintf(&b, "\nMost frequent metric in relations: %s (%d relations)\n", hub, hubCount)
	fmt.Fprintf(&b, "(paper: web/http-requests_Project_id_GET_mean)\n")

	hubIsLatency := 0.0
	if strings.Contains(hub, "http-requests") || strings.Contains(hub, "latency") {
		hubIsLatency = 1
	}
	return &Result{
		ID:    "figure6",
		Title: "ShareLatex Granger dependency graph",
		Text:  b.String(),
		Values: map[string]float64{
			"edges":             float64(len(graph.Edges)),
			"component_pairs":   float64(len(graph.ComponentPairs())),
			"bidirectional":     float64(graph.Bidirectional),
			"hub_relations":     float64(hubCount),
			"hub_is_request_ms": hubIsLatency,
		},
	}, nil
}
