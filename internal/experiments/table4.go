package experiments

import (
	"fmt"
	"strings"

	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
	"github.com/sieve-microservices/sieve/internal/autoscale"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// slaThresholdMS is the paper's SLA: p90 of request latencies < 1000 ms.
const slaThresholdMS = 1000

// slaSamples is the paper's sample count over the one-hour trace.
const slaSamples = 1400

// scalableComponents are the stateless ShareLatex services eligible for
// scaling (datastores are excluded, as in typical deployments).
var scalableComponents = []string{
	"chat", "clsi", "contacts", "doc-updater", "docstore", "filestore",
	"haproxy", "real-time", "spelling", "tags", "track-changes", "web",
}

// autoscaleOutcome is one replay's measurements (the Table 4 rows).
type autoscaleOutcome struct {
	meanCPU    float64
	violations int
	samples    int
	actions    int
}

// Table4 regenerates Table 4: the WorldCup-shaped one-hour trace
// replayed twice against ShareLatex, once autoscaled by the traditional
// per-component CPU rule and once by Sieve's selected metric. Thresholds
// for both policies are refined on a peak-load calibration window
// against the SLA, following §6.2. The paper reports that the Sieve
// policy raises mean CPU usage by ~55% (fewer, better-utilized
// instances), cuts SLA violations by ~63%, and issues ~34% fewer scaling
// actions.
func (s *Suite) Table4() (*Result, error) {
	runs, err := s.shareLatexPipelines()
	if err != nil {
		return nil, err
	}
	art := runs[0].artifact

	// Sieve's guiding metric. Table 4 compares *metrics*, not scaling
	// machinery ("a traditional metric (CPU usage) and Sieve's selection
	// when used as autoscaling triggers"), so both policies scale the
	// same component set and differ only in the trigger signal.
	_, guideKey, err := autoscale.SievePolicy(art, 1, 0, 10)
	if err != nil {
		return nil, err
	}
	slash := strings.IndexByte(guideKey, '/')
	guideComp, guideMetric := guideKey[:slash], guideKey[slash+1:]
	sieveRules := make([]autoscale.Rule, 0, len(scalableComponents))
	for _, c := range scalableComponents {
		sieveRules = append(sieveRules, autoscale.Rule{
			Target:          c,
			MetricComponent: guideComp,
			Metric:          guideMetric,
			UpThreshold:     1,
			MaxInstances:    10,
		})
	}

	pattern := loadgen.WorldCup(s.cfg.Seed+900, s.cfg.AutoscaleTicks, 150, 2400)

	// Calibration: replay the trace without scaling, recording the
	// guiding metric, web's CPU, and the SLA quantity; thresholds are
	// then refined against the SLA (the paper's iterative refinement on
	// a peak sample — the full un-scaled replay covers both the holding
	// and the violating regime, which the refinement needs).
	calibApp, err := sharelatex.New(s.cfg.Seed + 1)
	if err != nil {
		return nil, err
	}
	guideProbe := autoscale.NewProbe(calibApp.Registry(guideComp), guideMetric)
	cpuProbe := autoscale.NewProbe(calibApp.Registry("web"), "cpu_usage")
	var guideVals, cpuVals, latencies []float64
	loadgen.Drive(calibApp, pattern, func(tick int, nowMS int64) {
		guideVals = append(guideVals, guideProbe.Value())
		cpuVals = append(cpuVals, cpuProbe.Value())
		latencies = append(latencies, calibApp.EntryLatencyMS())
	})
	upS, downS, err := autoscale.RefineThresholds(guideVals, latencies, slaThresholdMS)
	if err != nil {
		return nil, err
	}
	// The CPU baseline is refined the same way against the busiest
	// component's CPU. This is where CPU's weakness shows: component CPU
	// does not track the end-to-end SLA, so the refined trigger fires
	// late (the paper's deployment refined to 21%/1% on its hardware).
	upC, downC, err := autoscale.RefineThresholds(cpuVals, latencies, slaThresholdMS)
	if err != nil {
		return nil, err
	}
	cpuRules := autoscale.CPUPolicy(scalableComponents, upC, downC, 10)

	replay := func(seed int64, rules []autoscale.Rule) (autoscaleOutcome, error) {
		var out autoscaleOutcome
		a, err := sharelatex.New(seed)
		if err != nil {
			return out, err
		}
		// Scale-out cadence proportional to the replay length so quick
		// configurations keep the same spikes-per-cooldown geometry.
		cooldown := s.cfg.AutoscaleTicks / 120
		if cooldown < 5 {
			cooldown = 5
		}
		eng, err := autoscale.NewEngine(a, rules, cooldown)
		if err != nil {
			return out, err
		}
		// Fixed testbed capacity, as in the paper's 12-VM deployment: both
		// policies compete for the same instance pool, so placing capacity
		// on the wrong components starves the bottleneck.
		eng.SetInstanceBudget(32)
		sla := autoscale.NewSLATracker(slaThresholdMS, len(pattern)/slaSamples)
		comps := a.Components()
		var cpuSum float64
		loadgen.Drive(a, pattern, func(tick int, nowMS int64) {
			eng.Step()
			sla.Observe(a.EntryLatencyMS())
			var tickCPU float64
			for _, c := range comps {
				tickCPU += a.Utilization(c) * 100
			}
			cpuSum += tickCPU / float64(len(comps))
		})
		out.meanCPU = cpuSum / float64(len(pattern))
		out.violations = sla.Violations()
		out.samples = sla.Samples()
		out.actions = len(eng.Actions())
		return out, nil
	}

	// Iterative refinement (§4.1 step 3): replay under the candidate
	// thresholds and lower them while SLA violations stay above 5% of the
	// samples, keeping the best replay. Both policies get the same
	// treatment.
	refine := func(rules []autoscale.Rule, up, down float64) (autoscaleOutcome, float64, float64, error) {
		withThresholds := func(u, d float64) []autoscale.Rule {
			out := make([]autoscale.Rule, len(rules))
			copy(out, rules)
			for i := range out {
				out[i].UpThreshold = u
				out[i].DownThreshold = d
			}
			return out
		}
		best, err := replay(s.cfg.Seed+2, withThresholds(up, down))
		if err != nil {
			return best, up, down, err
		}
		bestUp, bestDown := up, down
		for iter := 0; iter < 3 && best.violations > best.samples/20; iter++ {
			up *= 0.7
			down = up * 0.8
			out, err := replay(s.cfg.Seed+2, withThresholds(up, down))
			if err != nil {
				return best, bestUp, bestDown, err
			}
			if out.violations < best.violations {
				best, bestUp, bestDown = out, up, down
			}
		}
		return best, bestUp, bestDown, nil
	}

	cpuOut, upC, downC, err := refine(cpuRules, upC, downC)
	if err != nil {
		return nil, err
	}
	sieveOut, upS, downS, err := refine(sieveRules, upS, downS)
	if err != nil {
		return nil, err
	}

	diff := func(cpu, sieve float64) float64 {
		if cpu == 0 {
			return 0
		}
		return (sieve/cpu - 1) * 100
	}
	cpuDiff := diff(cpuOut.meanCPU, sieveOut.meanCPU)
	violDiff := diff(float64(cpuOut.violations), float64(sieveOut.violations))
	actDiff := diff(float64(cpuOut.actions), float64(sieveOut.actions))

	var b strings.Builder
	b.WriteString("Table 4: CPU-threshold autoscaling vs Sieve's metric selection\n")
	fmt.Fprintf(&b, "Guiding metric (Sieve): %s  [thresholds up=%.0f down=%.0f]\n", guideKey, upS, downS)
	fmt.Fprintf(&b, "Guiding metric (CPU):   cpu_usage per component  [thresholds up=%.1f%% down=%.1f%%]\n\n", upC, downC)
	b.WriteString("Metric                               CPU rule     Sieve       Difference  (paper)\n")
	fmt.Fprintf(&b, "Mean CPU usage per component [%%]     %-12.2f %-12.2f %+8.1f%%   (+54.8%%)\n",
		cpuOut.meanCPU, sieveOut.meanCPU, cpuDiff)
	fmt.Fprintf(&b, "SLA violations (out of %d)         %-12d %-12d %+8.1f%%   (-62.8%%)\n",
		cpuOut.samples, cpuOut.violations, sieveOut.violations, violDiff)
	fmt.Fprintf(&b, "Number of scaling actions            %-12d %-12d %+8.1f%%   (-34.4%%)\n",
		cpuOut.actions, sieveOut.actions, actDiff)

	return &Result{
		ID:    "table4",
		Title: "Autoscaling: traditional CPU rule vs Sieve's selection",
		Text:  b.String(),
		Values: map[string]float64{
			"cpu_rule_mean_cpu":     cpuOut.meanCPU,
			"sieve_rule_mean_cpu":   sieveOut.meanCPU,
			"cpu_rule_violations":   float64(cpuOut.violations),
			"sieve_rule_violations": float64(sieveOut.violations),
			"cpu_rule_actions":      float64(cpuOut.actions),
			"sieve_rule_actions":    float64(sieveOut.actions),
			"mean_cpu_diff_pct":     cpuDiff,
			"violations_diff_pct":   violDiff,
			"actions_diff_pct":      actDiff,
		},
	}, nil
}
