package experiments

import (
	"fmt"
	"strings"

	"github.com/sieve-microservices/sieve/internal/rca"
)

// figure7Thresholds are the similarity thresholds the paper sweeps.
var figure7Thresholds = []float64{0, 0.5, 0.6, 0.7}

// Figure7 regenerates Fig. 7: (a) cluster novelty classification counts,
// (b) edge-event counts under the similarity-threshold sweep, and (c)
// the number of components, clusters and metrics left for the developer
// to inspect at each threshold. The paper's trend to preserve: novel
// metrics concentrate in a minority of clusters, and raising the
// threshold monotonically shrinks the edge set and the inspection
// surface.
func (s *Suite) Figure7() (*Result, error) {
	base, err := s.diagnose(0.5)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	b.WriteString("Figure 7(a): cluster novelty classification (at threshold 0.5)\n")
	counts := base.ClusterKindCounts()
	total := 0
	for _, kind := range []rca.ClusterKind{rca.ClusterNew, rca.ClusterDiscarded, rca.ClusterNewAndDiscarded, rca.ClusterChanged, rca.ClusterUnchanged} {
		fmt.Fprintf(&b, "  %-15s %d\n", kind, counts[kind])
		total += counts[kind]
	}
	fmt.Fprintf(&b, "  %-15s %d   (paper: 5 new, 19 discarded, 1 both, 25 changed, 67 total)\n", "total", total)

	b.WriteString("\nFigure 7(b): edge events vs similarity threshold\n")
	b.WriteString("  threshold   new   discarded   lag-change   unchanged\n")
	values := map[string]float64{
		"clusters_total": float64(total),
		"clusters_novel": float64(counts[rca.ClusterNew] + counts[rca.ClusterDiscarded] + counts[rca.ClusterNewAndDiscarded]),
	}
	type sweepRow struct {
		threshold                float64
		comps, clusters, metrics int
		edgeCounts               map[rca.EdgeKind]int
	}
	var rows []sweepRow
	for _, th := range figure7Thresholds {
		rep, err := s.diagnose(th)
		if err != nil {
			return nil, err
		}
		ec := rep.EdgeKindCounts()
		comps, clusters, metricCount := rep.SurvivingCounts()
		rows = append(rows, sweepRow{threshold: th, comps: comps, clusters: clusters, metrics: metricCount, edgeCounts: ec})
		fmt.Fprintf(&b, "  %9.2f   %3d   %9d   %10d   %9d\n",
			th, ec[rca.EdgeNew], ec[rca.EdgeDiscarded], ec[rca.EdgeLagChanged], ec[rca.EdgeUnchanged])
	}
	b.WriteString("  (paper at 0/0.5/0.6/0.7: new 27/13/11/6, discarded 10/5/1/0, lag 4/4/2/0, unchanged 2/2/2/1)\n")

	b.WriteString("\nFigure 7(c): inspection surface vs similarity threshold\n")
	b.WriteString("  threshold   components   clusters   metrics\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %9.2f   %10d   %8d   %7d\n", r.threshold, r.comps, r.clusters, r.metrics)
	}
	b.WriteString("  (paper at 0: 13 components, 29 clusters, 221 metrics; at 0.5: 10/16/163)\n")

	for _, r := range rows {
		suffix := fmt.Sprintf("_t%02.0f", r.threshold*100)
		values["edges_new"+suffix] = float64(r.edgeCounts[rca.EdgeNew])
		values["edges_discarded"+suffix] = float64(r.edgeCounts[rca.EdgeDiscarded])
		values["components"+suffix] = float64(r.comps)
		values["metrics"+suffix] = float64(r.metrics)
	}

	return &Result{
		ID:     "figure7",
		Title:  "RCA cluster novelty and edge filtering sweep",
		Text:   b.String(),
		Values: values,
	}, nil
}

// Figure8 regenerates Fig. 8: the final edge differences between the
// top-5 ranked components at similarity threshold 0.5. The paper's
// headline finding is a new edge linking the Nova API cluster whose
// nova_instances_in_state_ACTIVE metric was replaced by
// nova_instances_in_state_ERROR to the Neutron server cluster containing
// neutron_ports_in_status_DOWN — the causal trace of the actual root
// cause (the dead Open vSwitch agent).
func (s *Suite) Figure8() (*Result, error) {
	report, err := s.diagnose(0.5)
	if err != nil {
		return nil, err
	}

	top := map[string]bool{}
	var topNames []string
	for _, cd := range report.Components {
		if len(topNames) >= 5 || cd.Novelty == 0 {
			break
		}
		top[cd.Component] = true
		topNames = append(topNames, cd.Component)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: edge differences between top-5 components (threshold 0.5)\n")
	fmt.Fprintf(&b, "Top-5 by novelty: %s\n\n", strings.Join(topNames, ", "))
	edgeCount := 0
	for _, e := range report.Edges {
		if !top[e.From] && !top[e.To] {
			continue
		}
		edgeCount++
		fmt.Fprintf(&b, "  [%-11s] %s/%s -> %s/%s", e.Kind, e.From, e.FromMetric, e.To, e.ToMetric)
		if e.Kind == rca.EdgeLagChanged {
			fmt.Fprintf(&b, " (lag %dms -> %dms)", e.CorrectLagMS, e.FaultyLagMS)
		}
		b.WriteString("\n")
	}

	// Headline metrics per suspect component.
	b.WriteString("\nSuspect metric lists:\n")
	headline := 0.0
	for _, rc := range report.Rankings {
		if !top[rc.Component] {
			continue
		}
		fmt.Fprintf(&b, "  #%d %-16s %d metrics", rc.Rank, rc.Component, len(rc.Metrics))
		var hits []string
		for _, m := range rc.Metrics {
			if strings.Contains(m, "in_state_ERROR") || strings.Contains(m, "in_status_DOWN") ||
				strings.Contains(m, "in_state_ACTIVE") || strings.Contains(m, "in_status_ACTIVE") {
				hits = append(hits, m)
			}
		}
		if len(hits) > 0 {
			fmt.Fprintf(&b, "  [%s]", strings.Join(hits, ", "))
			headline++
		}
		b.WriteString("\n")
	}
	b.WriteString("(paper: the ACTIVE->ERROR flip on Nova API links to Neutron's ports-DOWN cluster,\n")
	b.WriteString(" pointing at the VM-networking root cause)\n")

	return &Result{
		ID:    "figure8",
		Title: "RCA final edge differences among top suspects",
		Text:  b.String(),
		Values: map[string]float64{
			"top5_edges":               float64(edgeCount),
			"headline_metric_suspects": headline,
		},
	}, nil
}
