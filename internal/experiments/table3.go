package experiments

import (
	"fmt"
	"strings"

	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// Table3 regenerates Table 3: the monitoring stack's resource usage
// before and after Sieve's metric reduction. The full ShareLatex metric
// population is collected through the Telegraf-like collector into the
// Gorilla-compressed store, then the same workload is replayed shipping
// only the representative metrics selected by the pipeline. The paper
// reports reductions of 81.2% CPU, 93.8% DB size, 79.3% network-in and
// 50.7% network-out.
func (s *Suite) Table3() (*Result, error) {
	runs, err := s.shareLatexPipelines()
	if err != nil {
		return nil, err
	}
	allow := runs[0].artifact.Reduction.AllowlistKeys()

	measure := func(allowlist []string) (cpuSec float64, dbBytes, netIn, netOut int, err error) {
		a, err := sharelatex.New(s.cfg.Seed)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		pattern := loadgen.Random(s.cfg.Seed+100, s.cfg.ShareLatexTicks, 200, 2500)
		capture, err := core.Capture(a, pattern, core.CaptureOptions{Allowlist: allowlist})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		// Dashboard/autoscaler traffic: one full-window query per stored
		// series (the paper's network-out includes query responses).
		for _, key := range capture.DB.SeriesKeys() {
			slash := strings.IndexByte(key, '/')
			if _, err := capture.DB.Query(key[:slash], key[slash+1:], 0, a.Now()); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		capture.DB.Flush()
		st := capture.DB.Stats()
		cpu := st.IngestCPU.Seconds() + capture.Collector.Stats().EncodeCPU.Seconds()
		return cpu, st.StorageBytes, st.NetworkInBytes, st.NetworkOutBytes, nil
	}

	fullCPU, fullDB, fullIn, fullOut, err := measure(nil)
	if err != nil {
		return nil, err
	}
	redCPU, redDB, redIn, redOut, err := measure(allow)
	if err != nil {
		return nil, err
	}

	pct := func(before, after float64) float64 {
		if before == 0 {
			return 0
		}
		return (1 - after/before) * 100
	}
	cpuRed := pct(fullCPU, redCPU)
	dbRed := pct(float64(fullDB), float64(redDB))
	inRed := pct(float64(fullIn), float64(redIn))
	outRed := pct(float64(fullOut), float64(redOut))

	var b strings.Builder
	b.WriteString("Table 3: monitoring overhead before/after Sieve's reduction\n")
	b.WriteString("Metric            Before       After        Reduction   (paper)\n")
	fmt.Fprintf(&b, "CPU time [s]      %-12.4f %-12.4f %6.1f%%     (81.2%%)\n", fullCPU, redCPU, cpuRed)
	fmt.Fprintf(&b, "DB size [KB]      %-12.1f %-12.1f %6.1f%%     (93.8%%)\n", float64(fullDB)/1024, float64(redDB)/1024, dbRed)
	fmt.Fprintf(&b, "Network in [KB]   %-12.1f %-12.1f %6.1f%%     (79.3%%)\n", float64(fullIn)/1024, float64(redIn)/1024, inRed)
	fmt.Fprintf(&b, "Network out [KB]  %-12.1f %-12.1f %6.1f%%     (50.7%%)\n", float64(fullOut)/1024, float64(redOut)/1024, outRed)
	fmt.Fprintf(&b, "(%d metrics shipped before, %d after)\n", runs[0].artifact.Reduction.TotalBefore(), len(allow))

	return &Result{
		ID:    "table3",
		Title: "Monitoring overhead gains from metric reduction",
		Text:  b.String(),
		Values: map[string]float64{
			"cpu_reduction_pct":     cpuRed,
			"db_reduction_pct":      dbRed,
			"net_in_reduction_pct":  inRed,
			"net_out_reduction_pct": outRed,
		},
	}, nil
}
