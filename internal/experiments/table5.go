package experiments

import (
	"fmt"
	"strings"
)

// Table5 regenerates Table 5: OpenStack components sorted by the number
// of novel metrics between the correct and faulty versions (steps 1-2 of
// the RCA engine), with the final ranking after edge filtering at
// similarity threshold 0.5 (step 5). The paper's top suspects are Nova
// API (29 changed), Nova libvirt (21) and Neutron server (12), with the
// true root cause (Neutron) in the top 5.
func (s *Suite) Table5() (*Result, error) {
	report, err := s.diagnose(0.5)
	if err != nil {
		return nil, err
	}

	finalRank := map[string]int{}
	for _, rc := range report.Rankings {
		finalRank[rc.Component] = rc.Rank
	}

	var b strings.Builder
	b.WriteString("Table 5: OpenStack components by novel metrics (correct vs faulty)\n")
	b.WriteString("Component            Changed (New/Discarded)   Total   Final ranking\n")
	var totalChanged, totalNew, totalDiscarded, totalMetrics int
	for _, cd := range report.Components {
		rank := "-"
		if r, ok := finalRank[cd.Component]; ok {
			rank = fmt.Sprintf("%d", r)
		}
		fmt.Fprintf(&b, "%-20s %3d (%d/%d)%14s %5d   %s\n",
			cd.Component, cd.Novelty, len(cd.New), len(cd.Discarded), "", cd.Total, rank)
		totalChanged += cd.Novelty
		totalNew += len(cd.New)
		totalDiscarded += len(cd.Discarded)
		totalMetrics += cd.Total
	}
	fmt.Fprintf(&b, "%-20s %3d (%d/%d)%14s %5d\n", "Totals", totalChanged, totalNew, totalDiscarded, "", totalMetrics)
	b.WriteString("(paper rows sum to 120 changed (22/98) over 508 metrics; Nova API ranks 1st,\n")
	b.WriteString(" Neutron server in the top 5 — the true root cause's component)\n")

	// Headline positions for the values map.
	posOf := func(name string) float64 {
		for i, cd := range report.Components {
			if cd.Component == name {
				return float64(i + 1)
			}
		}
		return -1
	}
	neutronFinal := -1.0
	if r, ok := finalRank["neutron-server"]; ok {
		neutronFinal = float64(r)
	}
	novaFinal := -1.0
	if r, ok := finalRank["nova-api"]; ok {
		novaFinal = float64(r)
	}

	return &Result{
		ID:    "table5",
		Title: "RCA component ranking by metric novelty",
		Text:  b.String(),
		Values: map[string]float64{
			"total_changed":        float64(totalChanged),
			"total_new":            float64(totalNew),
			"total_discarded":      float64(totalDiscarded),
			"total_metrics":        float64(totalMetrics),
			"nova_api_novelty_pos": posOf("nova-api"),
			"nova_api_final_rank":  novaFinal,
			"neutron_final_rank":   neutronFinal,
			"ranked_components":    float64(len(report.Rankings)),
		},
	}, nil
}
