package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"github.com/sieve-microservices/sieve/internal/trace"
)

// tracedConn instruments a net.Conn: every Read/Write is reported to a
// syscall tracer and/or packet capturer, the per-event work sysdig and
// tcpdump perform in the paper's Fig. 5 comparison.
type tracedConn struct {
	net.Conn
	process string
	tracer  *trace.Tracer
	pcap    *trace.PacketCapture
}

func (c *tracedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.observe(trace.EventRead, p[:n])
	}
	return n, err
}

func (c *tracedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.observe(trace.EventWrite, p[:n])
	}
	return n, err
}

func (c *tracedConn) observe(t trace.EventType, payload []byte) {
	now := time.Now().UnixMilli()
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{
			TimeMS:  now,
			Process: c.process,
			Type:    t,
			Local:   c.LocalAddr().String(),
			Remote:  c.RemoteAddr().String(),
			Bytes:   len(payload),
		})
	}
	if c.pcap != nil {
		c.pcap.Capture(trace.Packet{
			TimeMS:  now,
			Src:     c.RemoteAddr().String(),
			Dst:     c.LocalAddr().String(),
			Payload: payload,
		})
	}
}

// tracedListener wraps accepted connections with tracedConn.
type tracedListener struct {
	net.Listener
	tracer *trace.Tracer
	pcap   *trace.PacketCapture
}

func (l *tracedListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.tracer != nil {
		l.tracer.Emit(trace.Event{
			TimeMS:  time.Now().UnixMilli(),
			Process: "nginx",
			Type:    trace.EventAccept,
			Local:   conn.LocalAddr().String(),
			Remote:  conn.RemoteAddr().String(),
		})
	}
	return &tracedConn{Conn: conn, process: "nginx", tracer: l.tracer, pcap: l.pcap}, nil
}

// runHTTPBenchmark serves a small static file and issues sequential GET
// requests against it (the paper's Apache-Benchmark-on-nginx setup),
// returning the total completion time.
func runHTTPBenchmark(requests int, tracer *trace.Tracer, pcap *trace.PacketCapture) (time.Duration, error) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	var ln net.Listener = base
	if tracer != nil || pcap != nil {
		ln = &tracedListener{Listener: base, tracer: tracer, pcap: pcap}
	}

	static := []byte(strings.Repeat("sieve", 120)) // ~600-byte static file
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write(static)
	})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	url := "http://" + base.Addr().String() + "/file"

	start := time.Now()
	for i := 0; i < requests; i++ {
		resp, err := client.Get(url)
		if err != nil {
			return 0, fmt.Errorf("request %d: %w", i, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			_ = resp.Body.Close()
			return 0, err
		}
		_ = resp.Body.Close()
	}
	return time.Since(start), nil
}

// Figure5 regenerates Fig. 5: completion time for 10k HTTP requests to a
// static file under no tracing, sysdig-style syscall tracing, and
// tcpdump-style packet capture. The paper measured 22% overhead for
// sysdig and 7% for tcpdump on its testbed; the shape to preserve is
// that both tracers cost measurably more than native and that the
// syscall tracer buys full process context for its extra work.
func (s *Suite) Figure5() (*Result, error) {
	requests := s.cfg.HTTPRequests

	// Warm the stack once so the first measurement isn't penalized.
	if _, err := runHTTPBenchmark(requests/10+1, nil, nil); err != nil {
		return nil, err
	}

	native, err := runHTTPBenchmark(requests, nil, nil)
	if err != nil {
		return nil, err
	}

	tracer := trace.NewTracer(1<<16, func(e *trace.Event) bool { return true })
	sysdig, err := runHTTPBenchmark(requests, tracer, nil)
	if err != nil {
		return nil, err
	}

	pcap := trace.NewPacketCapture(96) // tcpdump default snaplen era: headers only
	tcpdump, err := runHTTPBenchmark(requests, nil, pcap)
	if err != nil {
		return nil, err
	}

	overhead := func(d time.Duration) float64 {
		return (d.Seconds()/native.Seconds() - 1) * 100
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: completion time for %d HTTP requests (static file)\n", requests)
	fmt.Fprintf(&b, "Mode      Time [s]   Overhead vs native\n")
	fmt.Fprintf(&b, "native    %8.3f   -\n", native.Seconds())
	fmt.Fprintf(&b, "sysdig    %8.3f   %+.1f%%  (%d events, %d KB encoded)\n",
		sysdig.Seconds(), overhead(sysdig), tracer.Stats().Observed, tracer.Stats().EncodedBytes/1024)
	fmt.Fprintf(&b, "tcpdump   %8.3f   %+.1f%%  (%d records, %d KB captured)\n",
		tcpdump.Seconds(), overhead(tcpdump), pcap.Stats().Records, pcap.Stats().Bytes/1024)
	b.WriteString("(paper: sysdig +22%, tcpdump +7%; sysdig's extra cost buys process context)\n")

	return &Result{
		ID:    "figure5",
		Title: "Call-graph tracing overhead",
		Text:  b.String(),
		Values: map[string]float64{
			"native_seconds":       native.Seconds(),
			"sysdig_overhead_pct":  overhead(sysdig),
			"tcpdump_overhead_pct": overhead(tcpdump),
		},
	}, nil
}
