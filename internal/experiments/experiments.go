// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the simulated substrate. Each experiment
// returns a Result with a paper-style text table plus the key measured
// values; cmd/experiments prints them and the root benchmarks record
// them. A Suite caches the expensive pipeline runs (the OpenStack
// correct/faulty pair feeds Table 5, Figure 7 and Figure 8; the
// ShareLatex runs feed Figures 3, 4, 6 and Table 3), so regenerating the
// whole evaluation costs five ShareLatex pipelines, two OpenStack
// pipelines, two autoscaling replays, and one HTTP overhead measurement.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/app/openstack"
	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/rca"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the artifact identifier ("table1" ... "figure8").
	ID string
	// Title is the paper artifact's caption.
	Title string
	// Text is the formatted, paper-style table or series listing.
	Text string
	// Values holds the headline measured numbers keyed by name, for
	// EXPERIMENTS.md and benchmark metrics.
	Values map[string]float64
}

// Config sizes the experiment runs. The defaults reproduce the paper's
// shapes at laptop scale; Quick shrinks everything for smoke tests.
type Config struct {
	// ShareLatexTicks is the capture length for ShareLatex pipelines
	// (500 ms ticks; default 480 = 4 simulated minutes).
	ShareLatexTicks int
	// ShareLatexRuns is the number of randomized-load repetitions for
	// the robustness experiments (default 5, as in the paper).
	ShareLatexRuns int
	// OpenStackTicks is the capture length for the RCA pipelines
	// (default 480).
	OpenStackTicks int
	// AutoscaleTicks is the autoscaling replay length (default 7200 =
	// one simulated hour, the paper's trace length).
	AutoscaleTicks int
	// HTTPRequests is the request count for the tracing-overhead
	// experiment (default 10000, as in the paper).
	HTTPRequests int
	// Seed drives all simulations.
	Seed int64
	// Parallelism sizes the pipeline worker pools (0 = GOMAXPROCS).
	// Artifacts are bit-identical at any setting, so this only changes
	// how long the suite takes.
	Parallelism int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		ShareLatexTicks: 480,
		ShareLatexRuns:  5,
		OpenStackTicks:  480,
		AutoscaleTicks:  7200,
		HTTPRequests:    10000,
		Seed:            42,
	}
}

// QuickConfig returns a configuration small enough for CI smoke tests.
func QuickConfig() Config {
	return Config{
		ShareLatexTicks: 200,
		ShareLatexRuns:  3,
		OpenStackTicks:  200,
		AutoscaleTicks:  1200,
		HTTPRequests:    2000,
		Seed:            42,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ShareLatexTicks <= 0 {
		c.ShareLatexTicks = d.ShareLatexTicks
	}
	if c.ShareLatexRuns <= 0 {
		c.ShareLatexRuns = d.ShareLatexRuns
	}
	if c.OpenStackTicks <= 0 {
		c.OpenStackTicks = d.OpenStackTicks
	}
	if c.AutoscaleTicks <= 0 {
		c.AutoscaleTicks = d.AutoscaleTicks
	}
	if c.HTTPRequests <= 0 {
		c.HTTPRequests = d.HTTPRequests
	}
	return c
}

// shareLatexRun is one cached randomized-load pipeline run.
type shareLatexRun struct {
	artifact *core.Artifact
	capture  *core.CaptureResult
}

// Suite runs and caches the experiments.
type Suite struct {
	cfg Config

	slOnce sync.Once
	slRuns []shareLatexRun
	slErr  error

	osOnce    sync.Once
	osCorrect *core.Artifact
	osFaulty  *core.Artifact
	osErr     error
}

// NewSuite creates a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg.withDefaults()}
}

// shareLatexPipelines returns the cached randomized ShareLatex runs.
func (s *Suite) shareLatexPipelines() ([]shareLatexRun, error) {
	s.slOnce.Do(func() {
		for i := 0; i < s.cfg.ShareLatexRuns; i++ {
			a, err := sharelatex.New(s.cfg.Seed + int64(i))
			if err != nil {
				s.slErr = err
				return
			}
			pattern := loadgen.Random(s.cfg.Seed+int64(100+i), s.cfg.ShareLatexTicks, 200, 2500)
			art, capture, err := core.Run(a, pattern, core.PipelineOptions{
				Reduce:      core.DefaultReduceOptions(),
				Parallelism: s.cfg.Parallelism,
			})
			if err != nil {
				s.slErr = fmt.Errorf("sharelatex run %d: %w", i, err)
				return
			}
			s.slRuns = append(s.slRuns, shareLatexRun{artifact: art, capture: capture})
		}
	})
	return s.slRuns, s.slErr
}

// openStackArtifacts returns the cached correct/faulty pipeline pair.
func (s *Suite) openStackArtifacts() (correct, faulty *core.Artifact, err error) {
	s.osOnce.Do(func() {
		pattern := loadgen.Random(s.cfg.Seed+500, s.cfg.OpenStackTicks, 150, 1500)
		for _, fault := range []bool{false, true} {
			a, err := openstack.New(s.cfg.Seed, fault)
			if err != nil {
				s.osErr = err
				return
			}
			art, _, err := core.Run(a, pattern, core.PipelineOptions{
				Reduce: core.DefaultReduceOptions(),
				// A 1 s delay bound gives two candidate lags on the 500 ms
				// grid, so inter-version lag changes are observable
				// (Fig. 7's lag-change events).
				Deps:        core.DepOptions{DelayMS: 1000},
				Parallelism: s.cfg.Parallelism,
			})
			if err != nil {
				s.osErr = fmt.Errorf("openstack faulty=%v: %w", fault, err)
				return
			}
			if fault {
				s.osFaulty = art
			} else {
				s.osCorrect = art
			}
		}
	})
	return s.osCorrect, s.osFaulty, s.osErr
}

// diagnose runs the RCA engine at the given similarity threshold.
func (s *Suite) diagnose(threshold float64) (*rca.Report, error) {
	correct, faulty, err := s.openStackArtifacts()
	if err != nil {
		return nil, err
	}
	return rca.Diagnose(correct, faulty, rca.Options{SimilarityThreshold: threshold})
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Result, error) {
	type step struct {
		name string
		run  func() (*Result, error)
	}
	steps := []step{
		{"table1", s.Table1},
		{"figure3", s.Figure3},
		{"figure4", s.Figure4},
		{"figure5", s.Figure5},
		{"table3", s.Table3},
		{"figure6", s.Figure6},
		{"table4", s.Table4},
		{"table5", s.Table5},
		{"figure7", s.Figure7},
		{"figure8", s.Figure8},
	}
	out := make([]*Result, 0, len(steps))
	for _, st := range steps {
		r, err := st.run()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", st.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID runs one experiment by identifier.
func (s *Suite) ByID(id string) (*Result, error) {
	switch strings.ToLower(id) {
	case "table1":
		return s.Table1()
	case "figure3":
		return s.Figure3()
	case "figure4":
		return s.Figure4()
	case "figure5":
		return s.Figure5()
	case "table3":
		return s.Table3()
	case "figure6":
		return s.Figure6()
	case "table4":
		return s.Table4()
	case "table5":
		return s.Table5()
	case "figure7":
		return s.Figure7()
	case "figure8":
		return s.Figure8()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (table1, table3-5, figure3-8)", id)
	}
}

// IDs lists the available experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "figure3", "figure4", "figure5", "table3",
		"figure6", "table4", "table5", "figure7", "figure8",
	}
}

// warmApp steps an application briefly so lazily-created metrics exist.
func warmApp(a *app.App, ticks int, rps float64) {
	for i := 0; i < ticks; i++ {
		a.Step(rps)
	}
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
