package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplineInterpolatesKnotsExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := rng.Float64()
		for i := 0; i < n; i++ {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64() * 5
		}
		sp, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEqual(sp.Eval(xs[i]), ys[i], 1e-9*(1+math.Abs(ys[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplineReproducesLine(t *testing.T) {
	// A natural cubic spline through collinear points is exactly linear.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 4; x += 0.25 {
		want := 1 + 2*x
		if !almostEqual(sp.Eval(x), want, 1e-9) {
			t.Errorf("Eval(%g) = %g, want %g", x, sp.Eval(x), want)
		}
	}
}

func TestSplineSmoothInterior(t *testing.T) {
	// Sample sin(x); interior evaluation error must be small.
	var xs, ys []float64
	for x := 0.0; x <= 10; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, math.Sin(x))
	}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 9; x += 0.13 {
		if !almostEqual(sp.Eval(x), math.Sin(x), 5e-3) {
			t.Errorf("Eval(%g) = %g, want ~%g", x, sp.Eval(x), math.Sin(x))
		}
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for too few knots")
	}
	if _, err := NewSpline([]float64{0, 1, 1}, []float64{0, 1, 2}); err == nil {
		t.Error("expected error for non-increasing xs")
	}
	if _, err := NewSpline([]float64{0, 1, 2}, []float64{0, 1}); err == nil {
		t.Error("expected error for length mismatch")
	}
}
