package timeseries

import (
	"math"
)

// LowVarianceThreshold is the variance cutoff below which the paper
// discards a metric as unvarying (§3.2: var <= 0.002, measured on the
// z-scale-free raw values).
const LowVarianceThreshold = 0.002

// Mean returns the arithmetic mean of v, or NaN for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or NaN for an empty
// slice. The paper's unvarying-metric filter compares this quantity to
// LowVarianceThreshold.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// ZNormalize returns (v - mean)/std as a new slice. A constant series
// (zero standard deviation) normalizes to all zeros, matching the k-Shape
// convention that such series carry no shape information.
func ZNormalize(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	m := Mean(v)
	sd := StdDev(v)
	if sd == 0 || math.IsNaN(sd) {
		return out
	}
	for i, x := range v {
		out[i] = (x - m) / sd
	}
	return out
}

// Diff returns the first difference v[i+1]-v[i] as a new slice of length
// len(v)-1. It returns an empty slice when len(v) < 2. The paper applies
// this to non-stationary series (e.g. monotonically increasing counters)
// before Granger testing.
func Diff(v []float64) []float64 {
	if len(v) < 2 {
		return []float64{}
	}
	out := make([]float64, len(v)-1)
	for i := range out {
		out[i] = v[i+1] - v[i]
	}
	return out
}

// Lag returns v shifted right by k slots, truncated to the overlapping
// region: the result has length len(v)-k and result[i] = v[i]. Paired with
// the unshifted head it aligns y_t with y_{t-k}. It returns an empty slice
// when k >= len(v) or k < 0.
func Lag(v []float64, k int) []float64 {
	if k < 0 || k >= len(v) {
		return []float64{}
	}
	return v[:len(v)-k]
}

// IsConstant reports whether every sample equals the first one.
func IsConstant(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] != v[0] {
			return false
		}
	}
	return true
}

// HasNaN reports whether any sample is NaN.
func HasNaN(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// MinMax returns the smallest and largest sample. It returns (NaN, NaN)
// for an empty slice.
func MinMax(v []float64) (min, max float64) {
	if len(v) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0..100) of v using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
// The input is not modified.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), v...)
	insertionSort(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// insertionSort is used instead of sort.Float64s to keep NaNs stable at
// their positions deterministically for small slices; Percentile inputs in
// Sieve are latency windows of a few hundred samples where this is fine.
func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && less(v[j], v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func less(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}
