// Package timeseries provides the time-series representation and the
// preprocessing operations Sieve applies before clustering and causality
// testing: bucketed resampling onto a regular grid (the paper discretizes
// at 500 ms), cubic-spline reconstruction of gaps caused by scrape timeouts
// or lost packets, z-normalization, and first differencing for
// non-stationary series.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultStep is the discretization interval used throughout the paper
// (500 ms instead of the 2 s used in the original k-Shape work, to improve
// cross-component matching accuracy).
const DefaultStep = 500 * time.Millisecond

// Point is a single raw observation of a metric.
type Point struct {
	// T is the observation timestamp in milliseconds since the epoch of
	// the capture (simulation time in this reproduction).
	T int64
	// V is the observed value.
	V float64
}

// Series is a raw, possibly irregular metric recording.
type Series struct {
	// Name identifies the metric, e.g. "web.http_requests_mean".
	Name string
	// Points are the observations in non-decreasing time order. Callers
	// that cannot guarantee ordering should call Sort.
	Points []Point
}

// Sort orders the points by timestamp (stable, in place).
func (s *Series) Sort() {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].T < s.Points[j].T })
}

// Len returns the number of raw observations.
func (s *Series) Len() int { return len(s.Points) }

// Append adds an observation; it keeps amortized O(1) by requiring callers
// to append in time order (enforced lazily by Sort/Resample).
func (s *Series) Append(t int64, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Regular is a metric sampled on a fixed grid: value i was observed at
// Start + i*Step milliseconds.
type Regular struct {
	// Name identifies the metric.
	Name string
	// Start is the timestamp of Values[0] in milliseconds.
	Start int64
	// StepMS is the grid interval in milliseconds.
	StepMS int64
	// Values holds one sample per grid slot.
	Values []float64
}

// Len returns the number of grid samples.
func (r *Regular) Len() int { return len(r.Values) }

// TimeAt returns the timestamp of sample i in milliseconds.
func (r *Regular) TimeAt(i int) int64 { return r.Start + int64(i)*r.StepMS }

// Clone returns a deep copy.
func (r *Regular) Clone() *Regular {
	v := make([]float64, len(r.Values))
	copy(v, r.Values)
	return &Regular{Name: r.Name, Start: r.Start, StepMS: r.StepMS, Values: v}
}

// Window returns the sub-series covering grid slots [from, to). It shares
// the underlying storage.
func (r *Regular) Window(from, to int) (*Regular, error) {
	if from < 0 || to > len(r.Values) || from > to {
		return nil, fmt.Errorf("timeseries: window [%d,%d) out of range 0..%d", from, to, len(r.Values))
	}
	return &Regular{
		Name:   r.Name,
		Start:  r.TimeAt(from),
		StepMS: r.StepMS,
		Values: r.Values[from:to],
	}, nil
}

// GridBuckets returns the number of grid slots covering [start, end)
// with the given step (the last slot may be partial).
func GridBuckets(start, end, stepMS int64) int {
	return int((end - start + stepMS - 1) / stepMS)
}

// Resample buckets the raw series onto a regular grid covering
// [start, end) with the given step, averaging observations that fall into
// the same bucket and reconstructing empty buckets with a natural cubic
// spline over the known bucket centers (edge gaps are clamped to the
// nearest known value, since spline extrapolation is unbounded). It
// returns an error when the grid is empty or the series has no points.
func Resample(s *Series, start, end, stepMS int64) (*Regular, error) {
	if stepMS <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive step %d", stepMS)
	}
	if end <= start {
		return nil, fmt.Errorf("timeseries: empty grid [%d,%d)", start, end)
	}
	if len(s.Points) == 0 {
		return nil, fmt.Errorf("timeseries: series %q has no points", s.Name)
	}
	n := GridBuckets(start, end, stepMS)
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range s.Points {
		if p.T < start || p.T >= end || math.IsNaN(p.V) {
			continue
		}
		i := int((p.T - start) / stepMS)
		sums[i] += p.V
		counts[i]++
	}
	return FromBuckets(s.Name, start, stepMS, sums, counts)
}

// FromBuckets assembles a Regular from per-bucket sums and observation
// counts: bucket i's value is sums[i]/counts[i], empty buckets (count 0)
// are reconstructed exactly like Resample's gap fill. It is the second
// half of Resample, exposed so callers that maintain bucket state
// incrementally (the online window cache) produce bit-identical grids to
// a from-scratch Resample over the same raw points. It returns an error
// when every bucket is empty.
func FromBuckets(name string, start, stepMS int64, sums []float64, counts []int) (*Regular, error) {
	if len(sums) != len(counts) {
		return nil, fmt.Errorf("timeseries: %d sums for %d counts", len(sums), len(counts))
	}
	values := make([]float64, len(sums))
	var knownX, knownY []float64
	for i := range values {
		if counts[i] > 0 {
			values[i] = sums[i] / float64(counts[i])
			knownX = append(knownX, float64(i))
			knownY = append(knownY, values[i])
		} else {
			values[i] = math.NaN()
		}
	}
	if len(knownX) == 0 {
		end := start + int64(len(sums))*stepMS
		return nil, fmt.Errorf("timeseries: series %q has no points inside [%d,%d)", name, start, end)
	}
	if err := fillGaps(values, knownX, knownY); err != nil {
		return nil, fmt.Errorf("timeseries: reconstructing %q: %w", name, err)
	}
	return &Regular{Name: name, Start: start, StepMS: stepMS, Values: values}, nil
}

// fillGaps replaces NaN slots using cubic-spline interpolation over the
// known samples; positions outside the known range are clamped to the
// nearest known value.
func fillGaps(values []float64, knownX, knownY []float64) error {
	if len(knownX) == len(values) {
		return nil // nothing missing
	}
	if len(knownX) == 1 {
		for i := range values {
			values[i] = knownY[0]
		}
		return nil
	}
	var sp *Spline
	if len(knownX) >= 3 {
		var err error
		sp, err = NewSpline(knownX, knownY)
		if err != nil {
			return err
		}
	}
	first, last := knownX[0], knownX[len(knownX)-1]
	for i := range values {
		if !math.IsNaN(values[i]) {
			continue
		}
		x := float64(i)
		switch {
		case x <= first:
			values[i] = knownY[0]
		case x >= last:
			values[i] = knownY[len(knownY)-1]
		case sp != nil:
			values[i] = sp.Eval(x)
		default: // exactly two knots: linear interpolation
			t := (x - first) / (last - first)
			values[i] = knownY[0] + t*(knownY[1]-knownY[0])
		}
	}
	return nil
}
