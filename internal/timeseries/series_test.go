package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSeriesSortAndAppend(t *testing.T) {
	var s Series
	s.Append(300, 3)
	s.Append(100, 1)
	s.Append(200, 2)
	s.Sort()
	want := []int64{100, 200, 300}
	for i, p := range s.Points {
		if p.T != want[i] {
			t.Fatalf("point %d at t=%d, want %d", i, p.T, want[i])
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestResampleAveragesBuckets(t *testing.T) {
	s := &Series{Name: "cpu"}
	// Two points in bucket 0, one in bucket 1.
	s.Append(0, 2)
	s.Append(100, 4)
	s.Append(500, 10)
	r, err := Resample(s, 0, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !almostEqual(r.Values[0], 3, 1e-12) {
		t.Errorf("bucket 0 = %g, want 3 (mean of 2,4)", r.Values[0])
	}
	if !almostEqual(r.Values[1], 10, 1e-12) {
		t.Errorf("bucket 1 = %g, want 10", r.Values[1])
	}
	if r.TimeAt(1) != 500 {
		t.Errorf("TimeAt(1) = %d, want 500", r.TimeAt(1))
	}
}

func TestResampleFillsGapsSmoothly(t *testing.T) {
	// Samples of a parabola with a missing middle region: the spline must
	// reconstruct interior points well (cubic interpolates quadratics
	// nearly exactly away from boundary effects).
	s := &Series{Name: "m"}
	f := func(x float64) float64 { return 0.5*x*x - 3*x + 7 }
	for i := 0; i < 20; i++ {
		if i >= 8 && i <= 11 {
			continue // gap
		}
		s.Append(int64(i*500), f(float64(i)))
	}
	r, err := Resample(s, 0, 20*500, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i <= 11; i++ {
		if !almostEqual(r.Values[i], f(float64(i)), 0.35) {
			t.Errorf("gap slot %d = %g, want ~%g", i, r.Values[i], f(float64(i)))
		}
	}
}

func TestResampleClampsEdgeGaps(t *testing.T) {
	s := &Series{Name: "m"}
	s.Append(2*500, 5)
	s.Append(3*500, 6)
	s.Append(4*500, 7)
	r, err := Resample(s, 0, 7*500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values[0] != 5 || r.Values[1] != 5 {
		t.Errorf("leading gap = %g,%g, want clamped to 5", r.Values[0], r.Values[1])
	}
	if r.Values[5] != 7 || r.Values[6] != 7 {
		t.Errorf("trailing gap = %g,%g, want clamped to 7", r.Values[5], r.Values[6])
	}
}

func TestResampleTwoKnotsLinear(t *testing.T) {
	s := &Series{Name: "m"}
	s.Append(0, 0)
	s.Append(4*500, 8)
	r, err := Resample(s, 0, 5*500, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !almostEqual(r.Values[i], float64(i)*2, 1e-9) {
			t.Errorf("slot %d = %g, want %g", i, r.Values[i], float64(i)*2)
		}
	}
}

func TestResampleSingleKnotConstant(t *testing.T) {
	s := &Series{Name: "m"}
	s.Append(1000, 42)
	r, err := Resample(s, 0, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.Values {
		if v != 42 {
			t.Errorf("slot %d = %g, want 42", i, v)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := &Series{Name: "m"}
	if _, err := Resample(s, 0, 1000, 500); err == nil {
		t.Error("expected error for empty series")
	}
	s.Append(0, 1)
	if _, err := Resample(s, 0, 1000, 0); err == nil {
		t.Error("expected error for zero step")
	}
	if _, err := Resample(s, 1000, 1000, 500); err == nil {
		t.Error("expected error for empty grid")
	}
	if _, err := Resample(s, 5000, 6000, 500); err == nil {
		t.Error("expected error when all points fall outside the grid")
	}
}

func TestResampleIgnoresNaNPoints(t *testing.T) {
	s := &Series{Name: "m"}
	s.Append(0, 1)
	s.Append(100, math.NaN())
	s.Append(500, 2)
	r, err := Resample(s, 0, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values[0] != 1 {
		t.Errorf("bucket 0 = %g, want 1 (NaN ignored)", r.Values[0])
	}
}

func TestRegularWindow(t *testing.T) {
	r := &Regular{Name: "m", Start: 1000, StepMS: 500, Values: []float64{1, 2, 3, 4, 5}}
	w, err := r.Window(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Start != 1500 || w.Len() != 3 || w.Values[0] != 2 {
		t.Errorf("window = start %d len %d first %g", w.Start, w.Len(), w.Values[0])
	}
	if _, err := r.Window(3, 2); err == nil {
		t.Error("expected error for inverted window")
	}
	if _, err := r.Window(0, 9); err == nil {
		t.Error("expected error for out-of-range window")
	}
}

func TestRegularClone(t *testing.T) {
	r := &Regular{Name: "m", StepMS: 500, Values: []float64{1, 2}}
	c := r.Clone()
	c.Values[0] = 99
	if r.Values[0] != 1 {
		t.Error("Clone must not alias values")
	}
}

func TestResampleRoundTripProperty(t *testing.T) {
	// With one point per bucket, resampling is the identity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		s := &Series{Name: "m"}
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 10
			want[i] = v
			s.Append(int64(i)*500+int64(rng.Intn(500)), v)
		}
		r, err := Resample(s, 0, int64(n)*500, 500)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(r.Values[i], want[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
