package timeseries

import (
	"errors"
	"fmt"
	"sort"
)

// Spline is a natural cubic spline through a set of knots. The paper uses
// third-order spline interpolation to reconstruct missing samples because
// it introduces less distortion than linear interpolation or
// previous-value averaging (§3.2).
type Spline struct {
	xs, ys []float64
	// second derivatives at the knots (natural boundary: zero at ends)
	y2 []float64
}

// NewSpline fits a natural cubic spline through the given knots. The xs
// must be strictly increasing and len(xs) == len(ys) >= 3.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("timeseries: spline knot mismatch %d vs %d", n, len(ys))
	}
	if n < 3 {
		return nil, errors.New("timeseries: spline needs at least 3 knots")
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("timeseries: spline xs not strictly increasing at %d", i)
		}
	}

	// Solve the tridiagonal system for the second derivatives (Thomas
	// algorithm specialised for the natural boundary conditions).
	y2 := make([]float64, n)
	u := make([]float64, n-1)
	for i := 1; i < n-1; i++ {
		sig := (xs[i] - xs[i-1]) / (xs[i+1] - xs[i-1])
		p := sig*y2[i-1] + 2
		y2[i] = (sig - 1) / p
		du := (ys[i+1]-ys[i])/(xs[i+1]-xs[i]) - (ys[i]-ys[i-1])/(xs[i]-xs[i-1])
		u[i] = (6*du/(xs[i+1]-xs[i-1]) - sig*u[i-1]) / p
	}
	for k := n - 2; k >= 0; k-- {
		y2[k] = y2[k]*y2[k+1] + u[k]
	}

	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		y2: y2,
	}
	return s, nil
}

// Eval evaluates the spline at x. Outside the knot range it extrapolates
// the boundary cubic; callers that need clamping must clamp themselves.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	// Binary search for the bracketing interval [xs[lo], xs[lo+1]].
	lo := sort.SearchFloat64s(s.xs, x) - 1
	if lo < 0 {
		lo = 0
	}
	if lo > n-2 {
		lo = n - 2
	}
	hi := lo + 1
	h := s.xs[hi] - s.xs[lo]
	a := (s.xs[hi] - x) / h
	b := (x - s.xs[lo]) / h
	return a*s.ys[lo] + b*s.ys[hi] +
		((a*a*a-a)*s.y2[lo]+(b*b*b-b)*s.y2[hi])*(h*h)/6
}
