package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(v); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty slice must yield NaN")
	}
}

func TestZNormalizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()*7 + 3
		}
		if IsConstant(v) {
			return true // separately tested
		}
		z := ZNormalize(v)
		return almostEqual(Mean(z), 0, 1e-9) && almostEqual(Variance(z), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZNormalizeConstantSeries(t *testing.T) {
	z := ZNormalize([]float64{5, 5, 5})
	for _, x := range z {
		if x != 0 {
			t.Fatalf("constant series must normalize to zeros, got %v", z)
		}
	}
	if got := ZNormalize(nil); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Diff[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if len(Diff([]float64{1})) != 0 {
		t.Error("Diff of single element must be empty")
	}
}

func TestLag(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	got := Lag(v, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Lag[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if len(Lag(v, 5)) != 0 || len(Lag(v, -1)) != 0 {
		t.Error("out-of-range lag must be empty")
	}
	if len(Lag(v, 0)) != 5 {
		t.Error("Lag 0 must be the full series")
	}
}

func TestIsConstantAndHasNaN(t *testing.T) {
	if !IsConstant([]float64{3, 3, 3}) {
		t.Error("IsConstant false negative")
	}
	if IsConstant([]float64{3, 3.0001}) {
		t.Error("IsConstant false positive")
	}
	if !IsConstant(nil) {
		t.Error("empty slice is vacuously constant")
	}
	if HasNaN([]float64{1, 2}) {
		t.Error("HasNaN false positive")
	}
	if !HasNaN([]float64{1, math.NaN()}) {
		t.Error("HasNaN false negative")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g, want -1,7", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("empty MinMax must be NaN,NaN")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {90, 46},
	}
	for _, tt := range tests {
		if got := Percentile(v, tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty Percentile must be NaN")
	}
	// Input must not be mutated.
	orig := append([]float64(nil), v...)
	Percentile(v, 50)
	for i := range v {
		if v[i] != orig[i] {
			t.Fatal("Percentile mutated its input")
		}
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		p1 := rng.Float64() * 100
		p2 := rng.Float64() * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(v, p1) <= Percentile(v, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLowVarianceThresholdValue(t *testing.T) {
	// Guard the paper constant (§3.2): var <= 0.002.
	if LowVarianceThreshold != 0.002 {
		t.Fatalf("LowVarianceThreshold = %g, want 0.002", LowVarianceThreshold)
	}
}
