package loadgen

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app/openstack"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

func TestConstantAndSteps(t *testing.T) {
	p := Constant(50, 10)
	if len(p) != 10 || p[0] != 50 || p[9] != 50 {
		t.Errorf("Constant = %v", p)
	}
	s := Steps(10, 100, 8, 2)
	want := []float64{10, 10, 100, 100, 10, 10, 100, 100}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Steps = %v, want %v", s, want)
		}
	}
	if got := Steps(1, 2, 3, 0); len(got) != 3 {
		t.Error("Steps must clamp switchEvery")
	}
}

func TestRandomPatternPropertiesAndDeterminism(t *testing.T) {
	a := Random(7, 500, 50, 400)
	b := Random(7, 500, 50, 400)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	var minV, maxV = math.Inf(1), math.Inf(-1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for a fixed seed")
		}
		if a[i] < 0 {
			t.Fatal("negative load")
		}
		minV = math.Min(minV, a[i])
		maxV = math.Max(maxV, a[i])
	}
	if maxV-minV < 100 {
		t.Errorf("random workload barely varies: [%g, %g]", minV, maxV)
	}
	c := Random(8, 500, 50, 400)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 250 {
		t.Error("different seeds produce near-identical workloads")
	}
}

func TestWorldCupShape(t *testing.T) {
	p := WorldCup(3, 1000, 100, 800)
	if len(p) != 1000 {
		t.Fatalf("len = %d", len(p))
	}
	var sum, peak float64
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative load")
		}
		sum += v
		if v > peak {
			peak = v
		}
	}
	mean := sum / float64(len(p))
	// Spiky trace: peak well above the mean.
	if peak < 2*mean {
		t.Errorf("peak %g vs mean %g: trace not spiky", peak, mean)
	}
	if mean < 50 {
		t.Errorf("mean %g implausibly low", mean)
	}
}

func TestSessionsModel(t *testing.T) {
	sessions := []Session{
		{StartTick: 0, DurationTicks: 3, RPS: 2},
		{StartTick: 2, DurationTicks: 2, RPS: 5},
		{StartTick: -1, DurationTicks: 3, RPS: 1}, // partially before window
	}
	p := FromSessions(sessions, 5)
	want := []float64{3, 3, 7, 5, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("FromSessions = %v, want %v", p, want)
		}
	}
}

func TestSyntheticSessionsFollowEnvelope(t *testing.T) {
	envelope := make(Pattern, 200)
	for i := 100; i < 200; i++ {
		envelope[i] = 1 // all arrivals in the second half
	}
	sessions := SyntheticSessions(5, envelope, 100, 2)
	if len(sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	for _, s := range sessions {
		if s.StartTick < 100 {
			t.Fatalf("session started at %d during zero-envelope phase", s.StartTick)
		}
		if s.RPS <= 0 || s.DurationTicks <= 0 {
			t.Fatalf("degenerate session %+v", s)
		}
	}
}

func TestDriveAdvancesApp(t *testing.T) {
	a, err := openstack.New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	Drive(a, Constant(100, 20), func(tick int, nowMS int64) {
		ticks++
		if nowMS != int64(tick+1)*a.TickMS() {
			t.Fatalf("clock skew at tick %d: %d", tick, nowMS)
		}
	})
	if ticks != 20 {
		t.Errorf("onTick ran %d times, want 20", ticks)
	}
	if a.Now() != 20*a.TickMS() {
		t.Errorf("clock = %d", a.Now())
	}
}

func TestBootAndDeleteSucceedsOnHealthyCloud(t *testing.T) {
	a, err := openstack.New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	res := BootAndDelete(a, 3, 5, 1, nil)
	if res.Runs != 3 {
		t.Errorf("runs = %d", res.Runs)
	}
	if res.Failed != 0 {
		t.Errorf("healthy cloud failed %d/%d boot_and_delete runs", res.Failed, res.Runs)
	}
}

func TestBootAndDeleteFailsOnFaultyCloud(t *testing.T) {
	a, err := openstack.New(1, true)
	if err != nil {
		t.Fatal(err)
	}
	res := BootAndDelete(a, 3, 5, 1, nil)
	if res.Succeeded != 0 {
		t.Errorf("faulty cloud succeeded %d/%d runs; bug #1533942 must fail launches", res.Succeeded, res.Runs)
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

// failingWriter rejects every write after the first n.
type failingWriter struct {
	db    *tsdb.DB
	okay  int
	calls int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.calls > f.okay {
		return 0, fmt.Errorf("writer down")
	}
	return f.db.Write(p)
}

func TestDriveCollectorScrapesEveryTick(t *testing.T) {
	a, err := openstack.New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New()
	coll, err := metrics.NewCollector(db, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := DriveCollector(context.Background(), a, Constant(100, 20), coll, 1); err != nil {
		t.Fatal(err)
	}
	if got := coll.Stats().Scrapes; got != 20 {
		t.Fatalf("scrapes = %d, want 20", got)
	}
	if db.Stats().Points == 0 {
		t.Fatal("no points shipped")
	}
	if err := DriveCollector(context.Background(), a, Constant(100, 20), nil, 1); err == nil {
		t.Fatal("nil collector must be rejected")
	}
}

func TestDriveCollectorStopsOnScrapeError(t *testing.T) {
	a, err := openstack.New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	fw := &failingWriter{db: tsdb.New(), okay: 5}
	coll, err := metrics.NewCollector(fw, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	err = DriveCollector(context.Background(), a, Constant(100, 50), coll, 1)
	if err == nil || !strings.Contains(err.Error(), "writer down") {
		t.Fatalf("err = %v, want scrape failure", err)
	}
	// The drive loop must stop soon after the failure, not burn through
	// the whole pattern.
	if fw.calls > 7 {
		t.Fatalf("writer called %d times after failing at call 6", fw.calls)
	}
}

func TestDriveCollectorHonorsContext(t *testing.T) {
	a, err := openstack.New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New()
	coll, err := metrics.NewCollector(db, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DriveCollector(ctx, a, Constant(100, 20), coll, 1); err == nil {
		t.Fatal("cancelled context must surface")
	}
	if got := coll.Stats().Scrapes; got != 0 {
		t.Fatalf("scrapes after pre-cancelled drive = %d", got)
	}
}
