// Package loadgen generates the workloads that stress the simulated
// applications during Sieve's loading phase (§3.1) and the case studies:
// Locust-style virtual-user sessions (the paper's custom ShareLatex load
// generator), a WorldCup'98-shaped trace for the autoscaling experiment
// (§6.2 maps the 1998 soccer world-cup HTTP trace onto ShareLatex
// traffic), randomized workloads for the robustness measurements
// (§6.1.1), and a Rally-style boot_and_delete task runner for OpenStack
// (§6.3).
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/metrics"
)

// Pattern is a load trace: external requests/second applied at each
// simulation tick.
type Pattern []float64

// Constant returns a flat pattern.
func Constant(rps float64, ticks int) Pattern {
	p := make(Pattern, ticks)
	for i := range p {
		p[i] = rps
	}
	return p
}

// Steps returns a pattern alternating between low and high every
// switchEvery ticks, the classic square-wave stress shape.
func Steps(low, high float64, ticks, switchEvery int) Pattern {
	if switchEvery < 1 {
		switchEvery = 1
	}
	p := make(Pattern, ticks)
	for i := range p {
		if (i/switchEvery)%2 == 0 {
			p[i] = low
		} else {
			p[i] = high
		}
	}
	return p
}

// Random returns the randomized workload used for the clustering
// robustness runs: piecewise-constant levels redrawn every 20-60 ticks
// with linear ramps between them, plus per-tick jitter. Deterministic for
// a fixed seed.
func Random(seed int64, ticks int, minRPS, maxRPS float64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	p := make(Pattern, ticks)
	level := minRPS + rng.Float64()*(maxRPS-minRPS)
	next := minRPS + rng.Float64()*(maxRPS-minRPS)
	segLen := 20 + rng.Intn(41)
	segPos := 0
	for i := range p {
		frac := float64(segPos) / float64(segLen)
		base := level + (next-level)*frac
		p[i] = math.Max(0, base*(1+rng.NormFloat64()*0.05))
		segPos++
		if segPos >= segLen {
			level = next
			next = minRPS + rng.Float64()*(maxRPS-minRPS)
			segLen = 20 + rng.Intn(41)
			segPos = 0
		}
	}
	return p
}

// WorldCup returns a trace with the shape of the 1998 world-cup HTTP
// log: a slow diurnal swell with sharp match-time spikes. The paper
// replays one hour of the real trace; this generator reproduces the
// statistical shape (we do not have the original log — see DESIGN.md).
func WorldCup(seed int64, ticks int, baseRPS, peakRPS float64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	p := make(Pattern, ticks)

	// Two to four spike episodes at random positions.
	type spike struct {
		center, width int
		height        float64
	}
	nSpikes := 2 + rng.Intn(3)
	spikes := make([]spike, nSpikes)
	for i := range spikes {
		spikes[i] = spike{
			center: rng.Intn(ticks),
			width:  ticks/50 + rng.Intn(ticks/40+1),
			height: 0.7 + 0.3*rng.Float64(),
		}
	}
	for i := range p {
		// Diurnal swell across the window.
		diurnal := 0.5 + 0.5*math.Sin(2*math.Pi*float64(i)/float64(ticks)-math.Pi/2)
		v := baseRPS + (peakRPS-baseRPS)*0.25*diurnal
		for _, s := range spikes {
			d := float64(i - s.center)
			v += (peakRPS - baseRPS) * s.height * math.Exp(-d*d/float64(2*s.width*s.width))
		}
		v *= 1 + rng.NormFloat64()*0.06
		if v < 0 {
			v = 0
		}
		p[i] = v
	}
	return p
}

// Session is one virtual user's activity window, identified in the paper
// by client IP in the HTTP trace and replayed by spawning a virtual user
// for the session duration.
type Session struct {
	// StartTick is the tick the user appears.
	StartTick int
	// DurationTicks is how long the user stays.
	DurationTicks int
	// RPS is the request rate this user contributes while active.
	RPS float64
}

// FromSessions converts a session schedule into a load pattern of the
// given length by summing the rates of concurrently active users — the
// Locust model of load generation.
func FromSessions(sessions []Session, ticks int) Pattern {
	p := make(Pattern, ticks)
	for _, s := range sessions {
		end := s.StartTick + s.DurationTicks
		for t := s.StartTick; t < end && t < ticks; t++ {
			if t >= 0 {
				p[t] += s.RPS
			}
		}
	}
	return p
}

// SyntheticSessions draws a deterministic session schedule whose arrival
// intensity follows the given envelope pattern (values in [0,1] scale the
// arrival probability per tick).
func SyntheticSessions(seed int64, envelope Pattern, maxConcurrent int, perUserRPS float64) []Session {
	rng := rand.New(rand.NewSource(seed))
	var out []Session
	for t, e := range envelope {
		expected := e * float64(maxConcurrent) / 20
		n := int(expected)
		if rng.Float64() < expected-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			out = append(out, Session{
				StartTick:     t,
				DurationTicks: 10 + rng.Intn(90),
				RPS:           perUserRPS * (0.5 + rng.Float64()),
			})
		}
	}
	return out
}

// Drive replays a pattern against an application, invoking onTick (when
// non-nil) after every step — the hook where experiments scrape metrics,
// evaluate SLAs, or run the autoscaler.
func Drive(a *app.App, p Pattern, onTick func(tick int, nowMS int64)) {
	DriveContext(context.Background(), a, p, onTick)
}

// DriveContext is Drive with cancellation: it stops stepping the
// application as soon as the context is done, leaving the remainder of
// the pattern unapplied.
func DriveContext(ctx context.Context, a *app.App, p Pattern, onTick func(tick int, nowMS int64)) {
	for i, rps := range p {
		if ctx.Err() != nil {
			return
		}
		a.Step(rps)
		if onTick != nil {
			onTick(i, a.Now())
		}
	}
}

// DriveCollector replays a pattern against an application while scraping
// every scrapeEvery ticks (<= 0 means every tick) through the collector —
// the wiring that lets a simulator feed a local store or, with a
// collector pointed at the sieved HTTP client, a remote server over real
// HTTP. It stops on the first scrape error or when ctx is done.
func DriveCollector(ctx context.Context, a *app.App, p Pattern, coll *metrics.Collector, scrapeEvery int) error {
	if coll == nil {
		return fmt.Errorf("loadgen: nil collector")
	}
	if scrapeEvery <= 0 {
		scrapeEvery = 1
	}
	driveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var scrapeErr error
	DriveContext(driveCtx, a, p, func(tick int, nowMS int64) {
		if scrapeErr != nil || tick%scrapeEvery != 0 {
			return
		}
		if _, err := coll.ScrapeOnce(nowMS); err != nil {
			scrapeErr = fmt.Errorf("loadgen: scrape at tick %d: %w", tick, err)
			cancel()
		}
	})
	if scrapeErr != nil {
		return scrapeErr
	}
	return ctx.Err()
}

// RallyResult summarizes a Rally-style task run.
type RallyResult struct {
	// Runs is the number of completed task iterations.
	Runs int
	// Succeeded and Failed count per-iteration outcomes.
	Succeeded, Failed int
}

// String formats the result like a Rally summary row.
func (r RallyResult) String() string {
	return fmt.Sprintf("runs=%d succeeded=%d failed=%d", r.Runs, r.Succeeded, r.Failed)
}

// BootAndDelete drives the OpenStack simulation with Rally's
// 'boot_and_delete' task: each iteration boots `concurrency` VMs
// (a burst of control-plane load), lets them run for 15-25 s of simulated
// time, then deletes them (a second, smaller burst). An iteration fails
// when the application reports boot errors at the Nova API — which is
// exactly what Launchpad bug #1533942 causes. onTick runs after every
// simulation step.
func BootAndDelete(a *app.App, runs, concurrency int, seed int64, onTick func(tick int, nowMS int64)) RallyResult {
	rng := rand.New(rand.NewSource(seed))
	res := RallyResult{Runs: runs}
	tick := 0
	step := func(rps float64) {
		a.Step(rps)
		if onTick != nil {
			onTick(tick, a.Now())
		}
		tick++
	}
	ticksPerSecond := int(1000 / a.TickMS())
	if ticksPerSecond < 1 {
		ticksPerSecond = 1
	}

	for run := 0; run < runs; run++ {
		// Boot burst: concurrency VM creations over ~2 s.
		bootTicks := 2 * ticksPerSecond
		failed := false
		for i := 0; i < bootTicks; i++ {
			step(float64(concurrency) * 12)
			if a.ErrorRate("nova-api") > 0.5 {
				failed = true
			}
		}
		// Hold phase: 15-25 s of idle-ish background traffic.
		holdTicks := (15 + rng.Intn(11)) * ticksPerSecond
		for i := 0; i < holdTicks; i++ {
			step(float64(concurrency) * 1.5)
		}
		// Delete burst.
		for i := 0; i < ticksPerSecond; i++ {
			step(float64(concurrency) * 6)
		}
		if failed || a.FaultActive() && a.ErrorRate("neutron-server") > 0.5 {
			res.Failed++
		} else {
			res.Succeeded++
		}
	}
	return res
}
