package callgraph

import (
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/trace"
)

func TestGraphBasicOps(t *testing.T) {
	g := New()
	g.AddCall("web", "db", 3)
	g.AddCall("web", "db", 2)
	g.AddCall("web", "cache", 1)
	g.AddCall("cache", "db", 1)
	g.AddComponent("idle")

	if got := g.Calls("web", "db"); got != 5 {
		t.Errorf("Calls(web,db) = %d, want 5", got)
	}
	if !g.HasEdge("web", "cache") || g.HasEdge("db", "web") {
		t.Error("HasEdge wrong")
	}
	wantComponents := []string{"cache", "db", "idle", "web"}
	got := g.Components()
	if len(got) != len(wantComponents) {
		t.Fatalf("components = %v", got)
	}
	for i := range wantComponents {
		if got[i] != wantComponents[i] {
			t.Fatalf("components = %v, want %v", got, wantComponents)
		}
	}
	if callees := g.Callees("web"); len(callees) != 2 || callees[0] != "cache" || callees[1] != "db" {
		t.Errorf("Callees(web) = %v", callees)
	}
	if callers := g.Callers("db"); len(callers) != 2 || callers[0] != "cache" || callers[1] != "web" {
		t.Errorf("Callers(db) = %v", callers)
	}
}

func TestGraphIgnoresDegenerateEdges(t *testing.T) {
	g := New()
	g.AddCall("a", "a", 5) // self
	g.AddCall("", "b", 1)  // empty caller
	g.AddCall("a", "", 1)  // empty callee
	g.AddCall("a", "b", 0) // non-positive count
	if len(g.Edges()) != 0 {
		t.Errorf("edges = %v, want none", g.Edges())
	}
}

func TestGraphEdgesSorted(t *testing.T) {
	g := New()
	g.AddCall("z", "a", 1)
	g.AddCall("a", "z", 2)
	g.AddCall("a", "b", 3)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0].Caller != "a" || edges[0].Callee != "b" {
		t.Errorf("first edge = %+v", edges[0])
	}
	if edges[2].Caller != "z" {
		t.Errorf("last edge = %+v", edges[2])
	}
}

func TestCommunicatingPairsDeduplicated(t *testing.T) {
	g := New()
	g.AddCall("a", "b", 1)
	g.AddCall("b", "a", 1) // same unordered pair
	g.AddCall("b", "c", 1)
	pairs := g.CommunicatingPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 unique", pairs)
	}
	if pairs[0] != [2]string{"a", "b"} || pairs[1] != [2]string{"b", "c"} {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	g.AddCall("web", "db", 7)
	dot := g.DOT()
	for _, want := range []string{"digraph callgraph", `"web" -> "db" [label=7]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestFromSyscallEvents(t *testing.T) {
	events := []trace.Event{
		// db listens on 10.0.0.2:5432 (accept establishes ownership).
		{Type: trace.EventAccept, Process: "db", Local: "10.0.0.2:5432", Remote: "10.0.0.1:40001"},
		// web connects to db twice.
		{Type: trace.EventConnect, Process: "web", Local: "10.0.0.1:40001", Remote: "10.0.0.2:5432"},
		{Type: trace.EventConnect, Process: "web", Local: "10.0.0.1:40002", Remote: "10.0.0.2:5432"},
		// Reads and writes must not create edges.
		{Type: trace.EventWrite, Process: "web", Local: "10.0.0.1:40001", Remote: "10.0.0.2:5432", Bytes: 100},
		// Connect to an unmonitored endpoint is dropped.
		{Type: trace.EventConnect, Process: "web", Remote: "8.8.8.8:53"},
	}
	g := FromSyscallEvents(events)
	if got := g.Calls("web", "db"); got != 2 {
		t.Errorf("Calls(web,db) = %d, want 2", got)
	}
	if len(g.Edges()) != 1 {
		t.Errorf("edges = %v", g.Edges())
	}
}

func TestFromPacketPairsNeedsAddressMap(t *testing.T) {
	pairs := map[[2]string]int{
		{"10.0.0.1:40001", "10.0.0.2:5432"}: 3,
		{"10.0.0.9:40002", "10.0.0.2:5432"}: 2, // unmapped source (NAT)
	}
	addrMap := map[string]string{
		"10.0.0.1:40001": "web",
		"10.0.0.2:5432":  "db",
	}
	g := FromPacketPairs(pairs, addrMap)
	if got := g.Calls("web", "db"); got != 3 {
		t.Errorf("Calls(web,db) = %d, want 3", got)
	}
	// The NAT-hidden pair is silently lost: the packet-capture context gap.
	if len(g.Edges()) != 1 {
		t.Errorf("edges = %v, want only the mapped pair", g.Edges())
	}
}
