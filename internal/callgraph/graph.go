// Package callgraph models which microservice components call which, the
// directed graph Sieve extracts from the syscall trace during the loading
// phase (§3.1) and later uses to restrict Granger testing to communicating
// component pairs (§3.3).
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sieve-microservices/sieve/internal/trace"
)

// Edge is one caller -> callee relationship with its observed call count.
type Edge struct {
	// Caller initiates the connections; Callee serves them.
	Caller, Callee string
	// Calls is the number of observed connections.
	Calls int
}

// Graph is a directed call graph between components.
type Graph struct {
	adj   map[string]map[string]int
	nodes map[string]bool
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{adj: map[string]map[string]int{}, nodes: map[string]bool{}}
}

// AddComponent registers a node even if no edges touch it.
func (g *Graph) AddComponent(name string) {
	g.nodes[name] = true
}

// AddCall records n calls from caller to callee (self-calls are ignored;
// a component talking to itself carries no cross-component information).
func (g *Graph) AddCall(caller, callee string, n int) {
	if caller == callee || caller == "" || callee == "" || n <= 0 {
		return
	}
	g.nodes[caller] = true
	g.nodes[callee] = true
	m := g.adj[caller]
	if m == nil {
		m = map[string]int{}
		g.adj[caller] = m
	}
	m[callee] += n
}

// Components returns all node names in sorted order.
func (g *Graph) Components() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Callees returns the components that caller directly calls, sorted.
func (g *Graph) Callees(caller string) []string {
	m := g.adj[caller]
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Callers returns the components that directly call callee, sorted.
func (g *Graph) Callers(callee string) []string {
	var out []string
	for caller, m := range g.adj {
		if m[callee] > 0 {
			out = append(out, caller)
		}
	}
	sort.Strings(out)
	return out
}

// Calls returns the observed call count on the caller -> callee edge.
func (g *Graph) Calls(caller, callee string) int {
	return g.adj[caller][callee]
}

// HasEdge reports whether caller directly calls callee.
func (g *Graph) HasEdge(caller, callee string) bool {
	return g.adj[caller][callee] > 0
}

// Edges returns every edge sorted by (caller, callee).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for caller, m := range g.adj {
		for callee, n := range m {
			out = append(out, Edge{Caller: caller, Callee: callee, Calls: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// CommunicatingPairs returns the unordered component pairs connected by
// at least one edge, sorted. Sieve runs its pairwise Granger comparison
// exactly over these pairs instead of all O(n^2) combinations.
func (g *Graph) CommunicatingPairs() [][2]string {
	seen := map[[2]string]bool{}
	for caller, m := range g.adj {
		for callee := range m {
			a, b := caller, callee
			if a > b {
				a, b = b, a
			}
			seen[[2]string{a, b}] = true
		}
	}
	out := make([][2]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DOT renders the graph in Graphviz format with call counts as labels.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	for _, n := range g.Components() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=%d];\n", e.Caller, e.Callee, e.Calls)
	}
	b.WriteString("}\n")
	return b.String()
}

// FromSyscallEvents builds the call graph from a sysdig-like event
// stream: accept events establish which process owns each listening
// address, and connect events then resolve caller -> callee edges with no
// external knowledge — the context advantage over raw packet capture.
func FromSyscallEvents(events []trace.Event) *Graph {
	owner := map[string]string{}
	for _, e := range events {
		if e.Type == trace.EventAccept && e.Local != "" {
			owner[e.Local] = e.Process
		}
	}
	g := New()
	for _, e := range events {
		if e.Type != trace.EventConnect {
			continue
		}
		callee, ok := owner[e.Remote]
		if !ok {
			continue // connection to an unmonitored endpoint
		}
		g.AddCall(e.Process, callee, 1)
	}
	return g
}

// FromPacketPairs builds the call graph from tcpdump-style (src, dst)
// address pairs plus an externally supplied address -> component map;
// pairs with unmapped endpoints are dropped, which is exactly the
// fragility the paper attributes to the packet-capture approach.
func FromPacketPairs(pairs map[[2]string]int, addrToComponent map[string]string) *Graph {
	g := New()
	for pair, n := range pairs {
		src, okS := addrToComponent[pair[0]]
		dst, okD := addrToComponent[pair[1]]
		if !okS || !okD {
			continue
		}
		g.AddCall(src, dst, n)
	}
	return g
}
