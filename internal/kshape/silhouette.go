package kshape

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/parallel"
)

// Silhouette computes the mean silhouette coefficient of an assignment
// using a precomputed distance matrix (use PairwiseSBD). Values range from
// -1 (wrong assignment) to 1 (perfect); the paper selects the cluster
// count k with the best silhouette (§3.2). Points in singleton clusters
// contribute 0 by convention.
func Silhouette(dist [][]float64, assign []int) (float64, error) {
	n := len(assign)
	if n == 0 {
		return 0, errors.New("kshape: empty assignment")
	}
	if len(dist) != n {
		return 0, fmt.Errorf("kshape: distance matrix has %d rows for %d points", len(dist), n)
	}

	clusters := map[int][]int{}
	for i, a := range assign {
		clusters[a] = append(clusters[a], i)
	}
	if len(clusters) < 2 {
		// A single cluster has no between-cluster separation; silhouette
		// is undefined, returned as 0 so k=1 never wins a sweep.
		return 0, nil
	}

	var total float64
	for i := 0; i < n; i++ {
		own := clusters[assign[i]]
		if len(own) <= 1 {
			continue // contributes 0
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += dist[i][j]
			}
		}
		a /= float64(len(own) - 1)

		b := math.Inf(1)
		for c, members := range clusters {
			if c == assign[i] {
				continue
			}
			var d float64
			for _, j := range members {
				d += dist[i][j]
			}
			d /= float64(len(members))
			if d < b {
				b = d
			}
		}

		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n), nil
}

// SweepResult is the outcome of a ChooseK sweep.
type SweepResult struct {
	// Result is the clustering with the best silhouette.
	*Result
	// Silhouette is the winning score.
	Silhouette float64
	// Scores maps each attempted k to its silhouette.
	Scores map[int]float64
}

// ChooseK clusters the series for every k in [kMin, kMax] and returns the
// clustering with the highest silhouette score. The paper found k <= 7
// sufficient for components with up to 300 metrics. names, when non-nil,
// seeds the initial assignments by metric-name similarity.
func ChooseK(series [][]float64, names []string, kMin, kMax int, seed int64) (*SweepResult, error) {
	return ChooseKContext(context.Background(), series, names, kMin, kMax, seed, 1)
}

// ChooseKContext is ChooseK with cancellation and a worker pool: the
// per-k clustering runs fan out to `workers` goroutines (0 means
// GOMAXPROCS, <1 clamps to 1). Each candidate k keeps its own fixed seed
// and the winner is selected in ascending-k order afterwards, so the
// result is identical to the sequential sweep at any worker count.
func ChooseKContext(ctx context.Context, series [][]float64, names []string, kMin, kMax int, seed int64, workers int) (*SweepResult, error) {
	return ChooseKFromDist(ctx, series, nil, names, kMin, kMax, seed, workers)
}

// ChooseKFromDist is ChooseKContext with an optional caller-supplied
// distance matrix (PairwiseSBD over the z-normalized series, the one the
// sweep would compute itself when dist is nil). The warm-start
// degradation fallback uses it so a component that just scored its warm
// clustering does not pay the O(n^2) matrix a second time for the
// re-sweep.
func ChooseKFromDist(ctx context.Context, series [][]float64, dist [][]float64, names []string, kMin, kMax int, seed int64, workers int) (*SweepResult, error) {
	n := len(series)
	if n == 0 {
		return nil, errors.New("kshape: no series")
	}
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("kshape: invalid k range [%d,%d]", kMin, kMax)
	}
	if kMax > n {
		kMax = n
	}
	if kMin > n {
		kMin = n
	}
	if names != nil && len(names) != n {
		return nil, fmt.Errorf("kshape: %d names for %d series", len(names), n)
	}

	// One series (or a degenerate range) cannot be swept.
	if n == 1 {
		res, err := Cluster(series, Options{K: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &SweepResult{Result: res, Silhouette: 0, Scores: map[int]float64{1: 0}}, nil
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Normalize and transform every series exactly once: the cached
	// spectra serve the distance matrix and every candidate k of the
	// sweep (each of which used to recompute all of them per restart).
	// Profiles are immutable, so the per-k goroutines share them freely.
	p, err := prepare(series)
	if err != nil {
		return nil, err
	}

	// The distance matrix is independent of k; compute it once (or
	// reuse the caller's).
	if dist == nil {
		var s Scratch
		dist = pairwiseFromProfiles(p.profiles, &s)
	}

	// Sweep the candidate cluster counts concurrently; each attempt
	// writes only its own slot, keeping the merge deterministic. Scratch
	// buffers are per worker (indexed by worker id, no pooling), so reuse
	// is race-free by construction.
	type attempt struct {
		res   *Result
		score float64
	}
	attempts := make([]attempt, kMax-kMin+1)
	scratches := make([]Scratch, parallel.Workers(workers))
	err = parallel.ForEachWorker(ctx, workers, len(attempts), func(_ context.Context, worker, i int) error {
		opts := Options{K: kMin + i, Seed: seed, Restarts: 3}
		if names != nil {
			opts.InitialAssignments = NameSeeds(names, opts.K)
		}
		res, _, err := clusterPrepared(p, opts, &scratches[worker])
		if err != nil {
			return err
		}
		score, err := Silhouette(dist, res.Assignments)
		if err != nil {
			return err
		}
		attempts[i] = attempt{res: res, score: score}
		return nil
	})
	if err != nil {
		return nil, err
	}

	best := &SweepResult{Silhouette: math.Inf(-1), Scores: map[int]float64{}}
	for i, a := range attempts {
		k := kMin + i
		best.Scores[k] = a.score
		if a.score > best.Silhouette {
			best.Silhouette = a.score
			best.Result = a.res
		}
	}
	return best, nil
}
