package kshape

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContingencyKnown(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	b := []int{1, 1, 0, 0, 0}
	table, err := Contingency(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a-label 0 pairs with b-label 1 twice; a=1 with b=0 twice; a=2 with b=0 once.
	if table[0][0] != 2 || table[1][1] != 2 || table[2][1] != 1 {
		t.Errorf("table = %v", table)
	}
	if _, err := Contingency([]int{0}, []int{0, 1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestEntropyKnown(t *testing.T) {
	if got := Entropy([]int{0, 0, 1, 1}); !almostEqualF(got, math.Log(2), 1e-12) {
		t.Errorf("Entropy = %g, want ln2", got)
	}
	if got := Entropy([]int{3, 3, 3}); got != 0 {
		t.Errorf("uniform-label entropy = %g, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %g, want 0", got)
	}
}

func TestMutualInfoIdenticalEqualsEntropy(t *testing.T) {
	a := []int{0, 1, 2, 0, 1, 2, 0, 0}
	mi, err := MutualInfo(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqualF(mi, Entropy(a), 1e-12) {
		t.Errorf("MI(a,a) = %g, want H(a) = %g", mi, Entropy(a))
	}
}

func TestMutualInfoIndependent(t *testing.T) {
	// Perfectly balanced independent labelings have zero MI.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	mi, err := MutualInfo(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 1e-12 {
		t.Errorf("independent MI = %g, want 0", mi)
	}
}

func TestAMIIdenticalIsOne(t *testing.T) {
	a := []int{0, 1, 2, 0, 1, 2, 1, 1, 0}
	got, err := AMI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqualF(got, 1, 1e-9) {
		t.Errorf("AMI(a,a) = %g, want 1", got)
	}
}

func TestAMIPermutationInvariantProperty(t *testing.T) {
	// Relabeling clusters (0<->1 etc.) must not change AMI.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		perm := []int{2, 0, 1}
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		relabeled := make([]int, n)
		for i := range b {
			relabeled[i] = perm[b[i]]
		}
		x, err1 := AMI(a, b)
		y, err2 := AMI(a, relabeled)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqualF(x, y, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAMISymmetryAndBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(3)
		}
		x, err1 := AMI(a, b)
		y, err2 := AMI(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqualF(x, y, 1e-9) && x <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAMIRandomNearZero(t *testing.T) {
	// Independent random labelings: AMI concentrates near 0 (that is the
	// whole point of the adjustment); average over draws must be small.
	rng := rand.New(rand.NewSource(77))
	var sum float64
	const draws = 30
	for d := 0; d < draws; d++ {
		n := 200
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		v, err := AMI(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if avg := sum / draws; math.Abs(avg) > 0.03 {
		t.Errorf("mean AMI of random labelings = %g, want ~0", avg)
	}
}

func TestAMIDegenerate(t *testing.T) {
	// Both single-cluster: identical partitions.
	got, err := AMI([]int{0, 0, 0}, []int{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("single-cluster AMI = %g, want 1", got)
	}
	if _, err := AMI(nil, nil); err == nil {
		t.Error("expected error for empty labelings")
	}
	if _, err := AMI([]int{0}, []int{0, 1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func almostEqualF(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
