package kshape

import (
	"fmt"
	"math"
)

// labelCounts compacts arbitrary integer labels to 0..k-1 and returns the
// per-label counts.
func labelCounts(labels []int) (compact []int, counts []int) {
	idx := map[int]int{}
	compact = make([]int, len(labels))
	for i, l := range labels {
		c, ok := idx[l]
		if !ok {
			c = len(idx)
			idx[l] = c
			counts = append(counts, 0)
		}
		compact[i] = c
		counts[c]++
	}
	return compact, counts
}

// Contingency builds the contingency table between two labelings of the
// same points: cell [i][j] counts points with label i in a and j in b
// (labels compacted to dense indices).
func Contingency(a, b []int) ([][]int, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("kshape: labelings of different length %d vs %d", len(a), len(b))
	}
	ca, countsA := labelCounts(a)
	cb, countsB := labelCounts(b)
	table := make([][]int, len(countsA))
	for i := range table {
		table[i] = make([]int, len(countsB))
	}
	for i := range ca {
		table[ca[i]][cb[i]]++
	}
	return table, nil
}

// Entropy returns the Shannon entropy (nats) of a labeling.
func Entropy(labels []int) float64 {
	_, counts := labelCounts(labels)
	n := float64(len(labels))
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}

// MutualInfo returns the mutual information (nats) between two labelings
// of the same points.
func MutualInfo(a, b []int) (float64, error) {
	table, err := Contingency(a, b)
	if err != nil {
		return 0, err
	}
	n := float64(len(a))
	if n == 0 {
		return 0, nil
	}
	rowSums := make([]float64, len(table))
	var colSums []float64
	if len(table) > 0 {
		colSums = make([]float64, len(table[0]))
	}
	for i, row := range table {
		for j, c := range row {
			rowSums[i] += float64(c)
			colSums[j] += float64(c)
		}
	}
	var mi float64
	for i, row := range table {
		for j, c := range row {
			if c == 0 {
				continue
			}
			nij := float64(c)
			mi += nij / n * math.Log(n*nij/(rowSums[i]*colSums[j]))
		}
	}
	if mi < 0 {
		mi = 0 // guard rounding noise
	}
	return mi, nil
}

// expectedMI computes E[MI] under the permutation model (Vinh, Epps &
// Bailey 2009): labels are shuffled while keeping the marginal counts
// fixed, so each contingency cell follows a hypergeometric distribution.
func expectedMI(countsA, countsB []int, n int) float64 {
	fn := float64(n)
	var emi float64
	for _, ai := range countsA {
		fa := float64(ai)
		for _, bj := range countsB {
			fb := float64(bj)
			lo := ai + bj - n
			if lo < 1 {
				lo = 1
			}
			hi := ai
			if bj < hi {
				hi = bj
			}
			for nij := lo; nij <= hi; nij++ {
				fnij := float64(nij)
				term := fnij / fn * math.Log(fn*fnij/(fa*fb))
				// Hypergeometric log-probability of this cell value.
				logP := lgamma(fa+1) + lgamma(fb+1) + lgamma(fn-fa+1) + lgamma(fn-fb+1) -
					lgamma(fn+1) - lgamma(fnij+1) - lgamma(fa-fnij+1) - lgamma(fb-fnij+1) -
					lgamma(fn-fa-fb+fnij+1)
				emi += term * math.Exp(logP)
			}
		}
	}
	return emi
}

// AMI returns the Adjusted Mutual Information between two labelings of
// the same points, normalized with the max-entropy convention of Vinh et
// al.:
//
//	AMI = (MI - E[MI]) / (max(H(a), H(b)) - E[MI])
//
// AMI is ~0 for independent (random) labelings and 1 for identical ones;
// the paper reports an average AMI of 0.597 across ShareLatex runs
// (Fig. 3). Two degenerate single-cluster labelings score 1 when
// identical in structure and 0 otherwise.
func AMI(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("kshape: labelings of different length %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("kshape: empty labelings")
	}
	mi, err := MutualInfo(a, b)
	if err != nil {
		return 0, err
	}
	_, countsA := labelCounts(a)
	_, countsB := labelCounts(b)
	ha := Entropy(a)
	hb := Entropy(b)
	emi := expectedMI(countsA, countsB, len(a))

	denom := math.Max(ha, hb) - emi
	if math.Abs(denom) < 1e-15 {
		// Both labelings are single-cluster (entropy 0): identical
		// partitions by definition.
		if len(countsA) == 1 && len(countsB) == 1 {
			return 1, nil
		}
		return 0, nil
	}
	ami := (mi - emi) / denom
	if ami > 1 {
		ami = 1
	}
	return ami, nil
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
