package kshape

import (
	"context"
	"errors"
	"fmt"
)

// ClusterWarmContext is the warm-started counterpart of ChooseKContext:
// instead of sweeping every candidate k, it clusters once at the fixed k
// a previous cycle converged on, seeded with that cycle's assignments,
// and scores the single result. On a sliding window whose content drifts
// slowly the previous fixed point is an excellent starting point, so the
// refinement loop converges in a fraction of the iterations and the
// (kMax-kMin+1) x restarts sweep is skipped entirely. The caller compares
// the returned silhouette against the last full sweep's score to decide
// when the shortcut has degraded and a re-sweep is due.
//
// initial must assign every series to a cluster in [0, k); series counts
// below k (clusters can die when metrics disappear) are rejected just
// like in ChooseK, signalling the caller to fall back to a full sweep.
//
// The scoring distance matrix is returned alongside the result so a
// caller that rejects the warm clustering (quality degraded) can hand
// it to ChooseKFromDist instead of paying the O(n^2) PairwiseSBD again
// for the re-sweep. It is nil for the trivial single-series case.
func ClusterWarmContext(ctx context.Context, series [][]float64, initial []int, k int, seed int64) (*SweepResult, [][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, nil, errors.New("kshape: no series")
	}
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("kshape: warm k=%d out of range for %d series", k, n)
	}
	if len(initial) != n {
		return nil, nil, fmt.Errorf("kshape: %d warm assignments for %d series", len(initial), n)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if n == 1 {
		res, err := Cluster(series, Options{K: 1, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return &SweepResult{Result: res, Silhouette: 0, Scores: map[int]float64{1: 0}}, nil, nil
	}

	// One prepare serves both the warm clustering and the scoring
	// distance matrix, so each series is normalized and transformed once.
	p, err := prepare(series)
	if err != nil {
		return nil, nil, err
	}
	var s Scratch
	res, _, err := clusterPrepared(p, Options{K: k, Seed: seed, InitialAssignments: initial}, &s)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	dist := pairwiseFromProfiles(p.profiles, &s)
	score, err := Silhouette(dist, res.Assignments)
	if err != nil {
		return nil, nil, err
	}
	return &SweepResult{Result: res, Silhouette: score, Scores: map[int]float64{k: score}}, dist, nil
}
