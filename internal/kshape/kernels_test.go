package kshape

import (
	"math/rand"
	"testing"
)

func randomSeries(rng *rand.Rand, n, sLen int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, sLen)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

// TestSpectrumBatchedSBDMatchesPairwise pins the batching invariant:
// distances over cached per-series spectra are bit-identical to SBD on
// the raw series — not merely close. This is what lets the silhouette
// sweep compute each series' FFT once instead of once per pair.
func TestSpectrumBatchedSBDMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	series := randomSeries(rng, 12, 73)
	// Include degenerate rows: constant (zero-norm) series hit the early
	// exits.
	series = append(series, make([]float64, 73))

	d, err := PairwiseSBD(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %v, want 0", i, i, d[i][i])
		}
		for j := i + 1; j < len(series); j++ {
			want, _ := SBD(series[i], series[j])
			if d[i][j] != want {
				t.Fatalf("d[%d][%d] = %v, direct SBD = %v (must be bit-identical)", i, j, d[i][j], want)
			}
			if d[j][i] != d[i][j] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}

	// The shift must match too: distShift against cached spectra is what
	// shape extraction aligns members with.
	profiles := make([]*sbdProfile, len(series))
	for i, s := range series {
		profiles[i] = newSBDProfile(s)
	}
	var s Scratch
	for i := range series {
		for j := range series {
			wantD, wantSh := SBD(series[i], series[j])
			gotD, gotSh := profiles[i].distShift(profiles[j], &s)
			if gotD != wantD || gotSh != wantSh {
				t.Fatalf("distShift(%d,%d) = (%v,%d), SBD = (%v,%d)", i, j, gotD, gotSh, wantD, wantSh)
			}
		}
	}
}

// TestKernelSBDScratchAllocs pins the steady-state cached-spectrum
// distance at zero allocations once the scratch is warm.
func TestKernelSBDScratchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series := randomSeries(rng, 2, 256)
	p, q := newSBDProfile(series[0]), newSBDProfile(series[1])
	var s Scratch
	p.distShift(q, &s) // warm the scratch and twiddle cache

	if allocs := testing.AllocsPerRun(50, func() {
		p.distShift(q, &s)
	}); allocs != 0 {
		t.Fatalf("warm distShift allocates %v times per call, want 0", allocs)
	}
}

// TestScratchClusterMatchesFresh checks that reusing one Scratch across
// many clustering runs leaves results bit-identical to fresh-state runs
// — the reuse pattern of the silhouette sweep's per-worker buffers.
func TestScratchClusterMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	series := randomSeries(rng, 10, 48)
	p, err := prepare(series)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 3, Seed: 1}

	var reused Scratch
	for run := 0; run < 3; run++ {
		var fresh Scratch
		want, _, err := clusterPrepared(p, opts, &fresh)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := clusterPrepared(p, opts, &reused)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Assignments) != len(want.Assignments) {
			t.Fatalf("run %d: %d assignments vs %d", run, len(got.Assignments), len(want.Assignments))
		}
		for i := range want.Assignments {
			if got.Assignments[i] != want.Assignments[i] {
				t.Fatalf("run %d: assignment[%d] = %d, fresh = %d", run, i, got.Assignments[i], want.Assignments[i])
			}
		}
		for c := range want.Centroids {
			for j := range want.Centroids[c] {
				if got.Centroids[c][j] != want.Centroids[c][j] {
					t.Fatalf("run %d: centroid[%d][%d] = %v, fresh = %v", run, c, j, got.Centroids[c][j], want.Centroids[c][j])
				}
			}
		}
	}
}
