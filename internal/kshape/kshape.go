package kshape

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/sieve-microservices/sieve/internal/mathx"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// DefaultMaxIterations bounds the refinement/assignment loop; k-Shape
// converges in a handful of iterations on metric workloads.
const DefaultMaxIterations = 100

// Options configures a Cluster run.
type Options struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds the refinement loop; 0 means
	// DefaultMaxIterations.
	MaxIterations int
	// Seed drives the deterministic fallback initialization when
	// InitialAssignments is nil.
	Seed int64
	// InitialAssignments optionally seeds the assignment (length must
	// equal the number of series, values in [0,K)). Sieve seeds by metric
	// name similarity (§3.2); this only affects convergence speed, not the
	// fixed point.
	InitialAssignments []int
	// Restarts runs the algorithm this many times from different random
	// initializations (seeds Seed, Seed+1, ...) and keeps the run with the
	// lowest total within-cluster SBD, mitigating local optima. 0 or 1
	// means a single run. Ignored when InitialAssignments is set.
	Restarts int
}

// Result is the outcome of a Cluster run.
type Result struct {
	// K is the number of clusters requested.
	K int
	// Assignments maps each input series index to its cluster in [0,K).
	Assignments []int
	// Centroids holds one z-normalized centroid per cluster; a cluster
	// that ended up empty has a zero centroid.
	Centroids [][]float64
	// Iterations is the number of refinement iterations performed.
	Iterations int
}

// Members returns the series indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// prepared is a component's batched clustering input: the z-normalized
// series and their cached spectra, computed once and shared read-only by
// every restart — and, in the silhouette sweep, by every candidate k and
// the distance matrix. This turns the O(pairs · restarts · k-values)
// transforms of the naive path into O(series).
type prepared struct {
	norm     [][]float64
	profiles []*sbdProfile
}

// prepare validates the series set and computes its normalized forms and
// spectra. The validation order and messages match the historical
// clusterOnce prologue.
func prepare(series [][]float64) (*prepared, error) {
	n := len(series)
	if n == 0 {
		return nil, errors.New("kshape: no series to cluster")
	}
	sLen := len(series[0])
	if sLen < 2 {
		return nil, fmt.Errorf("kshape: series length %d too short", sLen)
	}
	for i, s := range series {
		if len(s) != sLen {
			return nil, fmt.Errorf("kshape: series %d has length %d, want %d", i, len(s), sLen)
		}
		if timeseries.HasNaN(s) {
			return nil, fmt.Errorf("kshape: series %d contains NaN", i)
		}
	}
	p := &prepared{
		norm:     make([][]float64, n),
		profiles: make([]*sbdProfile, n),
	}
	for i, s := range series {
		p.norm[i] = timeseries.ZNormalize(s)
		p.profiles[i] = newSBDProfile(p.norm[i])
	}
	return p, nil
}

// Cluster runs k-Shape over the given series (all must share one length
// >= 2). Series are z-normalized internally, matching the algorithm's
// amplitude invariance. The run is deterministic for a fixed Options.
func Cluster(series [][]float64, opts Options) (*Result, error) {
	p, err := prepare(series)
	if err != nil {
		return nil, err
	}
	var s Scratch
	res, _, err := clusterPrepared(p, opts, &s)
	return res, err
}

// clusterPrepared runs Cluster's restart logic over pre-computed spectra
// with caller-owned scratch, returning the winning run and its final
// centroid profiles (consistent with Result.Centroids).
func clusterPrepared(p *prepared, opts Options, s *Scratch) (*Result, []*sbdProfile, error) {
	if opts.Restarts > 1 && opts.InitialAssignments == nil {
		var best *Result
		var bestProfiles []*sbdProfile
		bestCost := math.Inf(1)
		for r := 0; r < opts.Restarts; r++ {
			run := opts
			run.Restarts = 0
			run.Seed = opts.Seed + int64(r)
			res, centProfiles, err := clusterOnce(p, run, s)
			if err != nil {
				return nil, nil, err
			}
			if cost := totalWithin(res, centProfiles, p, s); cost < bestCost {
				bestCost, best, bestProfiles = cost, res, centProfiles
			}
		}
		return best, bestProfiles, nil
	}
	return clusterOnce(p, opts, s)
}

// totalWithin sums each series' distance to its assigned centroid, the
// objective used to compare restarts — computed over cached spectra,
// bit-identical to SBD(centroid, normalized series) per member.
func totalWithin(r *Result, centProfiles []*sbdProfile, p *prepared, s *Scratch) float64 {
	var total float64
	for i, a := range r.Assignments {
		total += centProfiles[a].dist(p.profiles[i], s)
	}
	return total
}

func clusterOnce(p *prepared, opts Options, s *Scratch) (*Result, []*sbdProfile, error) {
	n := len(p.norm)
	if opts.K < 1 {
		return nil, nil, fmt.Errorf("kshape: invalid K=%d", opts.K)
	}
	if opts.K > n {
		return nil, nil, fmt.Errorf("kshape: K=%d exceeds %d series", opts.K, n)
	}
	sLen := len(p.norm[0])
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	assign := make([]int, n)
	switch {
	case opts.InitialAssignments != nil:
		if len(opts.InitialAssignments) != n {
			return nil, nil, fmt.Errorf("kshape: %d initial assignments for %d series", len(opts.InitialAssignments), n)
		}
		for i, a := range opts.InitialAssignments {
			if a < 0 || a >= opts.K {
				return nil, nil, fmt.Errorf("kshape: initial assignment %d out of range [0,%d)", a, opts.K)
			}
			assign[i] = a
		}
	default:
		rng := rand.New(rand.NewSource(opts.Seed))
		for i := range assign {
			assign[i] = rng.Intn(opts.K)
		}
	}

	centroids := make([][]float64, opts.K)
	for c := range centroids {
		centroids[c] = make([]float64, sLen)
	}

	centProfiles := make([]*sbdProfile, opts.K)
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1

		// Refinement: re-extract each cluster's centroid.
		for c := 0; c < opts.K; c++ {
			members := s.members[:0]
			memberProfiles := s.memberProfiles[:0]
			for i, a := range assign {
				if a == c {
					members = append(members, p.norm[i])
					memberProfiles = append(memberProfiles, p.profiles[i])
				}
			}
			s.members, s.memberProfiles = members, memberProfiles
			centroids[c] = shapeExtraction(members, memberProfiles, centroids[c], s)
		}

		// Assignment: move every series to its closest centroid. Member
		// FFTs are cached, so each distance costs one spectrum product.
		for c := range centProfiles {
			centProfiles[c] = newSBDProfile(centroids[c])
		}
		changed := false
		for i := range p.norm {
			best, bestC := 2.1, assign[i] // SBD is bounded by 2
			for c := 0; c < opts.K; c++ {
				d := centProfiles[c].dist(p.profiles[i], s)
				if d < best {
					best, bestC = d, c
				}
			}
			if bestC != assign[i] {
				assign[i] = bestC
				changed = true
			}
		}

		// Re-seed empty clusters deterministically with the series
		// farthest from its own centroid, so K stays meaningful.
		for c := 0; c < opts.K; c++ {
			if countOf(assign, c) > 0 {
				continue
			}
			worstI, worstD := -1, -1.0
			for i, a := range assign {
				if countOf(assign, a) <= 1 {
					continue // do not empty another cluster
				}
				d := centProfiles[a].dist(p.profiles[i], s)
				if d > worstD {
					worstD, worstI = d, i
				}
			}
			if worstI >= 0 {
				assign[worstI] = c
				changed = true
			}
		}

		if !changed {
			break
		}
	}

	return &Result{
		K:           opts.K,
		Assignments: assign,
		Centroids:   centroids,
		Iterations:  iterations,
	}, centProfiles, nil
}

// shapeExtraction computes a cluster's new centroid: members are aligned
// to the current centroid, and the new centroid is the dominant
// eigenvector of Q·AᵀA·Q (A = aligned member rows, Q = centering matrix),
// which maximizes the summed squared cross-correlation to all members.
// The result is z-normalized and sign-fixed against the reference. All
// intermediates (aligned rows, centering buffers, power-iteration
// vectors) come from the scratch; only the returned centroid is a fresh
// slice.
func shapeExtraction(members [][]float64, memberProfiles []*sbdProfile, reference []float64, s *Scratch) []float64 {
	sLen := len(reference)
	if len(members) == 0 {
		return make([]float64, sLen)
	}
	refIsZero := l2(reference) == 0

	var refProfile *sbdProfile
	if !refIsZero {
		refProfile = newSBDProfile(reference)
	}
	aligned := s.aligned(len(members), sLen)
	for i, m := range members {
		if refIsZero {
			copy(aligned[i], m)
			continue
		}
		_, shift := refProfile.distShift(memberProfiles[i], s)
		alignInto(aligned[i], m, shift)
	}

	if cap(s.centered) < sLen {
		s.centered = make([]float64, sLen)
	}
	centered := s.centered[:sLen]
	if cap(s.tmp) < len(aligned) {
		s.tmp = make([]float64, len(aligned))
	}
	tmp := s.tmp[:len(aligned)]

	// Implicit operator v -> Q AᵀA Q v, where Qv = v - mean(v).
	apply := func(dst, src []float64) {
		m := timeseries.Mean(src)
		for j, x := range src {
			centered[j] = x - m
		}
		for i, row := range aligned {
			var sum float64
			for j, v := range row {
				sum += v * centered[j]
			}
			tmp[i] = sum
		}
		for j := range dst {
			dst[j] = 0
		}
		for i, row := range aligned {
			w := tmp[i]
			if w == 0 {
				continue
			}
			for j, v := range row {
				dst[j] += w * v
			}
		}
		m = timeseries.Mean(dst)
		for j := range dst {
			dst[j] -= m
		}
	}
	vec, _ := mathx.DominantEigenWith(sLen, apply, 100, 1e-9, &s.eigen)
	vec = timeseries.ZNormalize(vec)

	// Eigenvectors are sign-ambiguous; pick the orientation that better
	// correlates with the reference (or the first member for a fresh
	// cluster).
	base := reference
	if refIsZero {
		base = aligned[0]
	}
	var dot float64
	for j := range vec {
		dot += vec[j] * base[j]
	}
	if dot < 0 {
		for j := range vec {
			vec[j] = -vec[j]
		}
	}
	return vec
}

func countOf(assign []int, c int) int {
	n := 0
	for _, a := range assign {
		if a == c {
			n++
		}
	}
	return n
}
