package kshape

import (
	"math/rand"
	"testing"
)

func TestSilhouetteKnownGeometry(t *testing.T) {
	// Four points, two tight pairs far apart.
	dist := [][]float64{
		{0, 0.1, 1.0, 1.0},
		{0.1, 0, 1.0, 1.0},
		{1.0, 1.0, 0, 0.1},
		{1.0, 1.0, 0.1, 0},
	}
	good, err := Silhouette(dist, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.85 {
		t.Errorf("good assignment silhouette = %g, want ~0.9", good)
	}
	bad, err := Silhouette(dist, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad >= good {
		t.Errorf("bad assignment silhouette %g not worse than good %g", bad, good)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	dist := [][]float64{{0, 1}, {1, 0}}
	s, err := Silhouette(dist, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("single cluster silhouette = %g, want 0", s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil); err == nil {
		t.Error("expected error for empty assignment")
	}
	if _, err := Silhouette([][]float64{{0}}, []int{0, 1}); err == nil {
		t.Error("expected error for size mismatch")
	}
}

func TestChooseKFindsTwoFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	series, truth := twoShapeFamilies(rng, 6, 96)
	sweep, err := ChooseK(series, nil, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.K != 2 {
		t.Errorf("ChooseK selected k=%d (scores %v), want 2", sweep.K, sweep.Scores)
	}
	ami, err := AMI(sweep.Assignments, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ami < 0.9 {
		t.Errorf("winning clustering AMI = %g, want high", ami)
	}
	if len(sweep.Scores) != 4 {
		t.Errorf("scores for %d values of k, want 4", len(sweep.Scores))
	}
}

func TestChooseKWithNameSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	series, _ := twoShapeFamilies(rng, 4, 64)
	names := []string{
		"sine_a", "sine_b", "sine_c", "sine_d",
		"square_a", "square_b", "square_c", "square_d",
	}
	sweep, err := ChooseK(series, names, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.K != 2 {
		t.Errorf("k = %d, want 2", sweep.K)
	}
}

func TestChooseKDegenerate(t *testing.T) {
	if _, err := ChooseK(nil, nil, 2, 5, 0); err == nil {
		t.Error("expected error for no series")
	}
	if _, err := ChooseK([][]float64{{1, 2, 3}}, nil, 0, 5, 0); err == nil {
		t.Error("expected error for invalid k range")
	}
	if _, err := ChooseK([][]float64{{1, 2}, {3, 4}}, []string{"a"}, 2, 3, 0); err == nil {
		t.Error("expected error for name count mismatch")
	}
	// A single series degenerates to one cluster.
	sweep, err := ChooseK([][]float64{{1, 2, 3}}, nil, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.K != 1 || sweep.Assignments[0] != 0 {
		t.Errorf("single series: k=%d assign=%v", sweep.K, sweep.Assignments)
	}
	// kMax clamps to n.
	sweep, err = ChooseK([][]float64{{1, 2, 9}, {2, 4, 1}, {5, 1, 2}}, nil, 2, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.K > 3 {
		t.Errorf("k = %d exceeds series count", sweep.K)
	}
}
