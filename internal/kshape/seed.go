package kshape

import (
	"sort"

	"github.com/sieve-microservices/sieve/internal/strdist"
)

// NameSeeds produces an initial cluster assignment for k clusters from
// metric names: k seed names are chosen by deterministic farthest-point
// traversal under Jaro-Winkler distance and every name is assigned to its
// most similar seed. Developers name related metrics similarly
// ("cpu_usage", "cpu_usage_percentile"), so this starts k-Shape close to
// a fixed point (§3.2); it affects convergence speed only.
func NameSeeds(names []string, k int) []int {
	n := len(names)
	assign := make([]int, n)
	if n == 0 || k <= 1 {
		return assign
	}
	if k > n {
		k = n
	}

	// Deterministic order regardless of input permutation: work on the
	// lexicographically smallest name first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })

	seeds := make([]int, 0, k)
	seeds = append(seeds, order[0])
	for len(seeds) < k {
		bestIdx, bestDist := -1, -1.0
		for _, i := range order {
			if containsInt(seeds, i) {
				continue
			}
			// Distance to the closest already-chosen seed.
			closest := 2.0
			for _, s := range seeds {
				d := 1 - strdist.JaroWinkler(names[i], names[s])
				if d < closest {
					closest = d
				}
			}
			if closest > bestDist {
				bestDist, bestIdx = closest, i
			}
		}
		if bestIdx < 0 {
			break
		}
		seeds = append(seeds, bestIdx)
	}

	for i, name := range names {
		bestC, bestSim := 0, -1.0
		for c, s := range seeds {
			sim := strdist.JaroWinkler(name, names[s])
			if sim > bestSim {
				bestSim, bestC = sim, c
			}
		}
		assign[i] = bestC
	}
	return assign
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
