package kshape

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sieve-microservices/sieve/internal/timeseries"
)

func sine(n int, period float64, phase float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/period + phase)
	}
	return out
}

func TestSBDIdenticalSeries(t *testing.T) {
	x := sine(64, 16, 0)
	d, shift := SBD(x, x)
	if d > 1e-9 {
		t.Errorf("SBD(x,x) = %g, want ~0", d)
	}
	if shift != 0 {
		t.Errorf("shift = %d, want 0", shift)
	}
}

func TestSBDDetectsShift(t *testing.T) {
	// y is x delayed by 5 samples; SBD must report the alignment shift
	// that maps y back onto x and a near-zero distance.
	n := 128
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, n+10)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	copy(x, base[5:5+n])
	copy(y, base[:n]) // y[t] = x[t-(-5)] -> y leads... y[t] = base[t], x[t] = base[t+5], so y[t] = x[t-5]
	d, shift := SBD(x, y)
	if d > 0.15 {
		t.Errorf("SBD of shifted copies = %g, want small", d)
	}
	if shift != -5 {
		t.Errorf("shift = %d, want -5", shift)
	}
	// Align must undo the delay.
	al := Align(y, shift)
	var agree float64
	for i := 0; i < n-5; i++ {
		if math.Abs(al[i]-x[i]) < 1e-12 {
			agree++
		}
	}
	if agree < float64(n-5) {
		t.Errorf("Align recovered %g/%d samples", agree, n-5)
	}
}

func TestSBDZeroSeriesConventions(t *testing.T) {
	zero := make([]float64, 16)
	x := sine(16, 8, 0)
	if d, _ := SBD(zero, zero); d != 0 {
		t.Errorf("SBD(0,0) = %g, want 0", d)
	}
	if d, _ := SBD(zero, x); d != 1 {
		t.Errorf("SBD(0,x) = %g, want 1", d)
	}
	if d, _ := SBD(x, zero); d != 1 {
		t.Errorf("SBD(x,0) = %g, want 1", d)
	}
}

func TestSBDRangeAndSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		dxy, _ := SBD(x, y)
		dyx, _ := SBD(y, x)
		if dxy < -1e-12 || dxy > 2+1e-12 {
			return false
		}
		return math.Abs(dxy-dyx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSBDScaleInvariance(t *testing.T) {
	// SBD divides by the norms, so positive scaling must not matter.
	x := sine(64, 16, 0)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 37 * x[i]
	}
	d, _ := SBD(x, y)
	if d > 1e-9 {
		t.Errorf("SBD under scaling = %g, want ~0", d)
	}
}

func TestSBDShiftInvarianceProperty(t *testing.T) {
	// A circularly-unrelated, zero-padded shift of x stays close to x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(64)
		shift := 1 + rng.Intn(5)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := Align(x, shift) // y[t] = x[t-shift], i.e. y lags x
		d, got := SBD(x, y)
		// Some information is lost at the padded boundary; distance must
		// still be small and the recovered shift exact (negative: y lags).
		return d < 0.35 && got == -shift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAlignZeroPads(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	got := Align(y, 2)
	want := []float64{0, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Align(+2) = %v, want %v", got, want)
		}
	}
	got = Align(y, -1)
	want = []float64{2, 3, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Align(-1) = %v, want %v", got, want)
		}
	}
}

func TestPairwiseSBDMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := make([][]float64, 6)
	for i := range series {
		series[i] = make([]float64, 40)
		for j := range series[i] {
			series[i][j] = rng.NormFloat64()
		}
	}
	d, err := PairwiseSBD(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if d[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %g, want 0", i, i, d[i][i])
		}
		for j := range series {
			direct, _ := SBD(series[i], series[j])
			if math.Abs(d[i][j]-direct) > 1e-9 {
				t.Errorf("pairwise[%d][%d] = %g, direct = %g", i, j, d[i][j], direct)
			}
			if d[i][j] != d[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestPairwiseSBDErrors(t *testing.T) {
	if _, err := PairwiseSBD([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged series")
	}
	if _, err := PairwiseSBD([][]float64{{}}); err == nil {
		t.Error("expected error for empty series")
	}
	if d, err := PairwiseSBD(nil); err != nil || d != nil {
		t.Error("nil input should be a no-op")
	}
}

func TestNCCPeakIsCorrelationCoefficient(t *testing.T) {
	// For z-normalized series of length n, NCC at zero shift equals the
	// Pearson correlation (up to the 1/n factor folded into the norms).
	x := timeseries.ZNormalize(sine(64, 16, 0))
	ncc := NCC(x, x)
	peak := ncc[len(x)-1] // zero-shift entry
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("NCC zero-shift of identical series = %g, want 1", peak)
	}
}
