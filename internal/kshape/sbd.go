package kshape

import (
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
)

// NCC returns the normalized cross-correlation profile of two equal-length
// series: entry k corresponds to shift s = k-(n-1) and holds
// CC_s(x,y) / (||x||·||y||). When either series has zero norm the profile
// is all zeros.
func NCC(x, y []float64) []float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("kshape: NCC needs equal non-empty lengths, got %d and %d", len(x), len(y)))
	}
	cc := mathx.CrossCorrelate(x, y)
	nx := l2(x)
	ny := l2(y)
	denom := nx * ny
	if denom == 0 {
		for i := range cc {
			cc[i] = 0
		}
		return cc
	}
	for i := range cc {
		cc[i] /= denom
	}
	return cc
}

// SBD returns the shape-based distance between two equal-length series,
//
//	SBD(x,y) = 1 - max_w NCC_w(x,y),
//
// together with the shift at which the maximum is attained: passing it to
// Align(y, shift) lines y up with x (a negative shift means y lags x and
// is advanced; a positive one means y leads and is delayed). The distance lies
// in [0, 2]. Two zero-norm (constant) series are defined to have distance
// 0; a zero-norm series against a non-zero one has distance 1.
func SBD(x, y []float64) (dist float64, shift int) {
	n := len(x)
	if n != len(y) || n == 0 {
		panic(fmt.Sprintf("kshape: SBD needs equal non-empty lengths, got %d and %d", len(x), len(y)))
	}
	zx := l2(x) == 0
	zy := l2(y) == 0
	if zx && zy {
		return 0, 0
	}
	if zx || zy {
		return 1, 0
	}
	ncc := NCC(x, y)
	best, bestIdx := math.Inf(-1), 0
	for i, v := range ncc {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return 1 - best, bestIdx - (n - 1)
}

// Align shifts y by the given shift (as returned by SBD) so it lines up
// with the reference series: the result r satisfies r[t] = y[t-shift],
// zero-padded where the shift runs past the ends.
func Align(y []float64, shift int) []float64 {
	return alignInto(make([]float64, len(y)), y, shift)
}

// alignInto is Align writing into dst (len(dst) == len(y)), including the
// zero padding, so callers can reuse one flat backing buffer.
func alignInto(dst, y []float64, shift int) []float64 {
	n := len(y)
	for t := 0; t < n; t++ {
		src := t - shift
		if src >= 0 && src < n {
			dst[t] = y[src]
		} else {
			dst[t] = 0
		}
	}
	return dst
}

// Scratch pools one goroutine's SBD and clustering buffers: the spectrum
// product and inverse-transform slices behind every cached-spectrum
// distance, plus the centroid-extraction workspace. The zero value is
// ready to use. A Scratch must not be shared between concurrent
// goroutines — fan-outs (the silhouette sweep, the pipeline executor)
// keep one per worker, indexed by parallel.ForEachWorker's worker id.
type Scratch struct {
	prod []complex128
	inv  []float64

	// Centroid-extraction workspace (shape extraction + power iteration).
	eigen          mathx.EigenScratch
	centered       []float64
	tmp            []float64
	alignedFlat    []float64
	alignedRows    [][]float64
	members        [][]float64
	memberProfiles []*sbdProfile
}

func (s *Scratch) prodBuf(m int) []complex128 {
	if cap(s.prod) < m {
		s.prod = make([]complex128, m)
	}
	return s.prod[:m]
}

func (s *Scratch) invBuf(m int) []float64 {
	if cap(s.inv) < m {
		s.inv = make([]float64, m)
	}
	return s.inv[:m]
}

// aligned returns a rows-by-cols matrix of reused row slices backed by one
// flat buffer; contents are unspecified.
func (s *Scratch) aligned(rows, cols int) [][]float64 {
	if cap(s.alignedFlat) < rows*cols {
		s.alignedFlat = make([]float64, rows*cols)
	}
	flat := s.alignedFlat[:rows*cols]
	if cap(s.alignedRows) < rows {
		s.alignedRows = make([][]float64, rows)
	}
	out := s.alignedRows[:rows]
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols]
	}
	return out
}

// sbdProfile is a series' cached real-FFT spectrum used to batch pairwise
// SBD computations: the cross-correlation of any pair is one spectrum
// product plus one inverse real FFT. A profile depends only on its own
// series (spectra are never packed pairwise), so distances over cached
// profiles are bit-identical to SBD on the raw series. Profiles are
// immutable after creation and safe to share across goroutines.
type sbdProfile struct {
	spectrum []complex128
	norm     float64
	n        int
	padded   int
}

func newSBDProfile(x []float64) *sbdProfile {
	n := len(x)
	m := mathx.NextPow2(2*n - 1)
	buf := make([]complex128, m)
	mathx.RealFFT(buf, x, m)
	return &sbdProfile{spectrum: buf, norm: l2(x), n: n, padded: m}
}

// dist computes SBD between the two profiled series (lengths must match).
func (p *sbdProfile) dist(q *sbdProfile, s *Scratch) float64 {
	d, _ := p.distShift(q, s)
	return d
}

// distShift computes SBD and the aligning shift, matching SBD(p, q): the
// shift passed to Align(q, shift) lines q up with p. It performs the
// exact operation sequence of SBD's CrossCorrelate path on the cached
// spectra, so the result is bit-identical; with a warm scratch it
// allocates nothing.
func (p *sbdProfile) distShift(q *sbdProfile, s *Scratch) (float64, int) {
	if p.n != q.n {
		panic("kshape: profiled series length mismatch")
	}
	if p.norm == 0 && q.norm == 0 {
		return 0, 0
	}
	if p.norm == 0 || q.norm == 0 {
		return 1, 0
	}
	prod := s.prodBuf(p.padded)
	for i := range prod {
		prod[i] = p.spectrum[i] * complex(real(q.spectrum[i]), -imag(q.spectrum[i]))
	}
	inv := s.invBuf(p.padded)
	mathx.RealIFFT(inv, prod)
	denom := p.norm * q.norm
	best, bestShift := math.Inf(-1), 0
	for sh := -(p.n - 1); sh <= p.n-1; sh++ {
		idx := sh
		if idx < 0 {
			idx += p.padded
		}
		if v := inv[idx] / denom; v > best {
			best, bestShift = v, sh
		}
	}
	return 1 - best, bestShift
}

// PairwiseSBD computes the full symmetric SBD distance matrix for a set of
// equal-length series, caching per-series FFTs so each pair costs one
// spectrum product. It returns an error when lengths differ.
func PairwiseSBD(series [][]float64) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, nil
	}
	want := len(series[0])
	profiles := make([]*sbdProfile, n)
	for i, s := range series {
		if len(s) != want {
			return nil, fmt.Errorf("kshape: series %d has length %d, want %d", i, len(s), want)
		}
		if want == 0 {
			return nil, fmt.Errorf("kshape: series %d is empty", i)
		}
		profiles[i] = newSBDProfile(s)
	}
	var s Scratch
	return pairwiseFromProfiles(profiles, &s), nil
}

// pairwiseFromProfiles fills the symmetric distance matrix from cached
// spectra — the shared core of PairwiseSBD and the sweep's batched path.
func pairwiseFromProfiles(profiles []*sbdProfile, s *Scratch) [][]float64 {
	n := len(profiles)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := profiles[i].dist(profiles[j], s)
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
