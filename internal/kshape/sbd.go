package kshape

import (
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
)

// NCC returns the normalized cross-correlation profile of two equal-length
// series: entry k corresponds to shift s = k-(n-1) and holds
// CC_s(x,y) / (||x||·||y||). When either series has zero norm the profile
// is all zeros.
func NCC(x, y []float64) []float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("kshape: NCC needs equal non-empty lengths, got %d and %d", len(x), len(y)))
	}
	cc := mathx.CrossCorrelate(x, y)
	nx := l2(x)
	ny := l2(y)
	denom := nx * ny
	if denom == 0 {
		for i := range cc {
			cc[i] = 0
		}
		return cc
	}
	for i := range cc {
		cc[i] /= denom
	}
	return cc
}

// SBD returns the shape-based distance between two equal-length series,
//
//	SBD(x,y) = 1 - max_w NCC_w(x,y),
//
// together with the shift at which the maximum is attained: passing it to
// Align(y, shift) lines y up with x (a negative shift means y lags x and
// is advanced; a positive one means y leads and is delayed). The distance lies
// in [0, 2]. Two zero-norm (constant) series are defined to have distance
// 0; a zero-norm series against a non-zero one has distance 1.
func SBD(x, y []float64) (dist float64, shift int) {
	n := len(x)
	if n != len(y) || n == 0 {
		panic(fmt.Sprintf("kshape: SBD needs equal non-empty lengths, got %d and %d", len(x), len(y)))
	}
	zx := l2(x) == 0
	zy := l2(y) == 0
	if zx && zy {
		return 0, 0
	}
	if zx || zy {
		return 1, 0
	}
	ncc := NCC(x, y)
	best, bestIdx := math.Inf(-1), 0
	for i, v := range ncc {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return 1 - best, bestIdx - (n - 1)
}

// Align shifts y by the given shift (as returned by SBD) so it lines up
// with the reference series: the result r satisfies r[t] = y[t-shift],
// zero-padded where the shift runs past the ends.
func Align(y []float64, shift int) []float64 {
	n := len(y)
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		src := t - shift
		if src >= 0 && src < n {
			out[t] = y[src]
		}
	}
	return out
}

// sbdProfile is a cached FFT of a series used to batch pairwise SBD
// computations: the cross-correlation of any pair is one spectrum product
// plus one inverse FFT.
type sbdProfile struct {
	spectrum []complex128
	norm     float64
	n        int
	padded   int
}

func newSBDProfile(x []float64) *sbdProfile {
	n := len(x)
	m := mathx.NextPow2(2*n - 1)
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	mathx.FFT(buf)
	return &sbdProfile{spectrum: buf, norm: l2(x), n: n, padded: m}
}

// dist computes SBD between the two profiled series (lengths must match).
func (p *sbdProfile) dist(q *sbdProfile) float64 {
	d, _ := p.distShift(q)
	return d
}

// distShift computes SBD and the aligning shift, matching SBD(p, q): the
// shift passed to Align(q, shift) lines q up with p.
func (p *sbdProfile) distShift(q *sbdProfile) (float64, int) {
	if p.n != q.n {
		panic("kshape: profiled series length mismatch")
	}
	if p.norm == 0 && q.norm == 0 {
		return 0, 0
	}
	if p.norm == 0 || q.norm == 0 {
		return 1, 0
	}
	prod := make([]complex128, p.padded)
	for i := range prod {
		prod[i] = p.spectrum[i] * complex(real(q.spectrum[i]), -imag(q.spectrum[i]))
	}
	mathx.IFFT(prod)
	denom := p.norm * q.norm
	best, bestShift := math.Inf(-1), 0
	for s := -(p.n - 1); s <= p.n-1; s++ {
		idx := s
		if idx < 0 {
			idx += p.padded
		}
		if v := real(prod[idx]) / denom; v > best {
			best, bestShift = v, s
		}
	}
	return 1 - best, bestShift
}

// PairwiseSBD computes the full symmetric SBD distance matrix for a set of
// equal-length series, caching per-series FFTs so each pair costs one
// spectrum product. It returns an error when lengths differ.
func PairwiseSBD(series [][]float64) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, nil
	}
	want := len(series[0])
	profiles := make([]*sbdProfile, n)
	for i, s := range series {
		if len(s) != want {
			return nil, fmt.Errorf("kshape: series %d has length %d, want %d", i, len(s), want)
		}
		if want == 0 {
			return nil, fmt.Errorf("kshape: series %d is empty", i)
		}
		profiles[i] = newSBDProfile(s)
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := profiles[i].dist(profiles[j])
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d, nil
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
