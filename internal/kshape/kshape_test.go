package kshape

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// twoShapeFamilies builds series from two clearly different shape
// families: smooth sines and square waves, with per-series noise and
// random amplitudes/offsets (which z-normalization must neutralize).
func twoShapeFamilies(rng *rand.Rand, perFamily, n int) (series [][]float64, truth []int) {
	for f := 0; f < 2; f++ {
		for i := 0; i < perFamily; i++ {
			s := make([]float64, n)
			amp := 1 + rng.Float64()*9
			off := rng.NormFloat64() * 5
			for t := range s {
				var base float64
				if f == 0 {
					base = math.Sin(2 * math.Pi * float64(t) / 32)
				} else {
					// Square wave of a different period.
					if (t/8)%2 == 0 {
						base = 1
					} else {
						base = -1
					}
				}
				s[t] = off + amp*base + rng.NormFloat64()*0.05
			}
			series = append(series, s)
			truth = append(truth, f)
		}
	}
	return series, truth
}

func TestClusterSeparatesShapeFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	series, truth := twoShapeFamilies(rng, 8, 128)
	res, err := Cluster(series, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ami, err := AMI(res.Assignments, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ami < 0.95 {
		t.Errorf("AMI vs ground truth = %g, want ~1 (assignments %v)", ami, res.Assignments)
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series, _ := twoShapeFamilies(rng, 6, 64)
	a, err := Cluster(series, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(series, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("same seed produced different assignments at %d", i)
		}
	}
}

func TestClusterHonorsInitialAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	series, truth := twoShapeFamilies(rng, 5, 64)
	res, err := Cluster(series, Options{K: 2, InitialAssignments: truth})
	if err != nil {
		t.Fatal(err)
	}
	ami, err := AMI(res.Assignments, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ami < 0.95 {
		t.Errorf("starting from truth must stay at truth, AMI = %g", ami)
	}
	if res.Iterations > 5 {
		t.Errorf("converged in %d iterations, want few when seeded at truth", res.Iterations)
	}
}

func TestClusterKEqualsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series, _ := twoShapeFamilies(rng, 3, 32)
	res, err := Cluster(series, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
	if len(res.Members(0)) != len(series) {
		t.Error("Members(0) must return all series")
	}
}

func TestClusterValidation(t *testing.T) {
	good := [][]float64{{1, 2, 3}, {4, 5, 6}}
	cases := []struct {
		name   string
		series [][]float64
		opts   Options
	}{
		{"no series", nil, Options{K: 1}},
		{"bad K", good, Options{K: 0}},
		{"K too large", good, Options{K: 3}},
		{"short series", [][]float64{{1}, {2}}, Options{K: 1}},
		{"ragged", [][]float64{{1, 2, 3}, {1, 2}}, Options{K: 1}},
		{"NaN", [][]float64{{1, 2, math.NaN()}, {1, 2, 3}}, Options{K: 1}},
		{"bad init len", good, Options{K: 2, InitialAssignments: []int{0}}},
		{"bad init range", good, Options{K: 2, InitialAssignments: []int{0, 5}}},
	}
	for _, tc := range cases {
		if _, err := Cluster(tc.series, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestClusterCentroidMatchesFamilyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	series, truth := twoShapeFamilies(rng, 8, 128)
	res, err := Cluster(series, Options{K: 2, Seed: 7, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Each centroid must be very close (SBD) to the members of the family
	// it represents. Centroids live on the z-normalized scale, so members
	// are normalized before comparison (SBD is scale- but not
	// offset-invariant).
	for c := 0; c < 2; c++ {
		members := res.Members(c)
		if len(members) == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		for _, i := range members {
			d, _ := SBD(res.Centroids[c], timeseries.ZNormalize(series[i]))
			if d > 0.2 {
				t.Errorf("centroid %d far from member %d (truth %d): SBD=%g", c, i, truth[i], d)
			}
		}
	}
}

func TestNameSeedsGroupsByPrefix(t *testing.T) {
	names := []string{
		"cpu_usage_mean", "cpu_usage_p95", "cpu_usage_max",
		"net_bytes_in", "net_bytes_out", "net_bytes_dropped",
	}
	seeds := NameSeeds(names, 2)
	if len(seeds) != len(names) {
		t.Fatalf("got %d assignments, want %d", len(seeds), len(names))
	}
	// The three cpu_* names must share a cluster, likewise net_*.
	if seeds[0] != seeds[1] || seeds[1] != seeds[2] {
		t.Errorf("cpu metrics split across clusters: %v", seeds)
	}
	if seeds[3] != seeds[4] || seeds[4] != seeds[5] {
		t.Errorf("net metrics split across clusters: %v", seeds)
	}
	if seeds[0] == seeds[3] {
		t.Errorf("cpu and net metrics merged: %v", seeds)
	}
}

func TestNameSeedsDegenerate(t *testing.T) {
	if got := NameSeeds(nil, 3); len(got) != 0 {
		t.Error("empty names must give empty assignment")
	}
	got := NameSeeds([]string{"a", "b"}, 1)
	if got[0] != 0 || got[1] != 0 {
		t.Error("k=1 must assign all to 0")
	}
	// k > n clamps.
	got = NameSeeds([]string{"a", "b"}, 5)
	for _, g := range got {
		if g < 0 || g >= 2 {
			t.Errorf("assignment %d out of range", g)
		}
	}
}
