// Package kshape implements the k-Shape time-series clustering
// algorithm (Paparrizos & Gravano, SIGMOD 2015) that Sieve uses to
// reduce each component's metrics to a handful of representative ones
// (§3.2), together with the pieces the paper layers on top.
//
// The building blocks map onto the files:
//
//   - sbd.go: the shape-based distance (SBD), a cross-correlation
//     distance computed via FFT, and the normalized cross-correlation
//     sequence it derives from.
//   - kshape.go: the iterative refinement loop — assignment by SBD,
//     centroid extraction as the maximizing eigenvector of a
//     Rayleigh-quotient problem — plus metric-name seeding of the
//     initial assignment (seed.go), which makes runs deterministic and
//     mirrors the paper's observation that similarly named metrics tend
//     to cluster.
//   - silhouette.go, eval.go: silhouette-based selection of the cluster
//     count k within a configured range (ChooseK), and the Adjusted
//     Mutual Information score used to evaluate clustering consistency
//     across runs (Fig. 3).
//
// ChooseKContext fans candidate k values out to a worker pool; results
// are bit-identical at any parallelism.
package kshape
