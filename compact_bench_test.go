package sieve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/telemetry"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Compaction benchmark fixture: a month of 1m scrapes over 16 series,
// checkpointed into 120 small blocks — the shape a long-retention store
// grows into without a compactor. The same dataset is opened three ways:
// pristine (120 blocks), compacted (merged + 5m/1h companions), and a
// throwaway copy the merge benchmark compacts per iteration.
const (
	cbComps       = 4
	cbMets        = 4
	cbTickMS      = 60_000
	cbDays        = 30
	cbTicks       = cbDays * 24 * 60
	cbRounds      = 120
	cbSpanMS      = int64(cbTicks) * cbTickMS
	cbTotalPoints = cbComps * cbMets * cbTicks
)

func cbSamples() []tsdb.Sample {
	out := make([]tsdb.Sample, 0, cbTotalPoints)
	for i := 0; i < cbTicks; i++ {
		for c := 0; c < cbComps; c++ {
			for m := 0; m < cbMets; m++ {
				out = append(out, tsdb.Sample{
					Component: fmt.Sprintf("comp-%02d", c),
					Metric:    fmt.Sprintf("metric_%d", m),
					T:         int64(i) * cbTickMS,
					V:         float64((i*7+c*31+m*17)%1009) * 0.25,
				})
			}
		}
	}
	return out
}

func cbOpts(dir string) tsdb.DurabilityOptions {
	return tsdb.DurabilityOptions{
		Dir: dir, Fsync: tsdb.FsyncNever,
		FlushInterval: -1, CompactInterval: -1, Downsample: true,
	}
}

// cbBuild ingests the dataset as cbRounds checkpointed time slices, so
// the directory holds one small block per round, then closes the store:
// the fixture is a directory, reopened cold by each consumer.
func cbBuild(b *testing.B, dir string) {
	b.Helper()
	s, err := tsdb.OpenSharded(4, cbOpts(dir))
	if err != nil {
		b.Fatal(err)
	}
	samples := cbSamples()
	per := len(samples) / cbRounds
	for r := 0; r < cbRounds; r++ {
		if err := s.WriteSamples(samples[r*per:(r+1)*per], 0); err != nil {
			b.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func cbCopyDir(b *testing.B, src, dst string) {
	b.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			cbCopyDir(b, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

var cbFixtures struct {
	sync.Mutex
	root        string // parent temp dir
	pristineDir string // 120 small blocks, never compacted
	uncompacted *tsdb.Sharded
	compacted   *tsdb.Sharded
	coTel       *tsdb.StoreTelemetry
	blocksWere  int
	blocksNow   int
}

// cbStores builds the shared fixtures on first use and returns the
// (uncompacted, compacted) cold stores.
func cbStores(b *testing.B) (*tsdb.Sharded, *tsdb.Sharded) {
	cbFixtures.Lock()
	defer cbFixtures.Unlock()
	if cbFixtures.uncompacted != nil {
		return cbFixtures.uncompacted, cbFixtures.compacted
	}
	root, err := os.MkdirTemp("", "sieve-cbench-*")
	if err != nil {
		b.Fatal(err)
	}
	pristine := filepath.Join(root, "pristine")
	cbBuild(b, pristine)

	compactDir := filepath.Join(root, "compacted")
	cbCopyDir(b, pristine, compactDir)
	s, err := tsdb.OpenSharded(4, cbOpts(compactDir))
	if err != nil {
		b.Fatal(err)
	}
	before := s.BlockCount()
	if err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	after := s.BlockCount()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	// Both stores reopen cold, so the compacted one pays the real
	// open-time cost of loading merged blocks and companion files.
	un, err := tsdb.OpenSharded(4, cbOpts(pristine))
	if err != nil {
		b.Fatal(err)
	}
	co, err := tsdb.OpenSharded(4, cbOpts(compactDir))
	if err != nil {
		b.Fatal(err)
	}
	// The counter makes the JSON self-certifying: a "compacted-ds" row
	// with zero buckets read would mean the fast path silently regressed.
	cbFixtures.coTel = tsdb.NewStoreTelemetry(telemetry.NewRegistry())
	co.SetTelemetry(cbFixtures.coTel)
	cbFixtures.root = root
	cbFixtures.pristineDir = pristine
	cbFixtures.uncompacted, cbFixtures.compacted = un, co
	cbFixtures.blocksWere, cbFixtures.blocksNow = before, after
	return un, co
}

// compactRow is one BENCH_compact.json entry.
type compactRow struct {
	Name         string  `json:"name"`
	Store        string  `json:"store"` // uncompacted | compacted | merge
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"` // merge throughput / logical query coverage
	DsBucketsOp  int64   `json:"downsampled_buckets_per_op,omitempty"`
	SpeedupVsRaw float64 `json:"speedup_vs_uncompacted,omitempty"`
}

var compactBench struct {
	sync.Mutex
	rows map[string]compactRow
}

func putCompactRow(r compactRow) {
	compactBench.Lock()
	if compactBench.rows == nil {
		compactBench.rows = map[string]compactRow{}
	}
	compactBench.rows[r.Name] = r
	compactBench.Unlock()
}

// flushCompactJSON rewrites BENCH_compact.json, computing each query
// variant's speedup against the uncompacted month-window baseline.
func flushCompactJSON(order []string, baseline string) {
	compactBench.Lock()
	defer compactBench.Unlock()
	var rows []compactRow
	base := compactBench.rows[baseline].NsPerOp
	for _, name := range order {
		r, ok := compactBench.rows[name]
		if !ok {
			continue
		}
		if base > 0 && r.Store != "merge" && name != baseline {
			r.SpeedupVsRaw = base / r.NsPerOp
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark    string       `json:"benchmark"`
		GoMaxProcs   int          `json:"gomaxprocs"`
		GoVersion    string       `json:"go_version"`
		TotalPoints  int          `json:"dataset_points"`
		Series       int          `json:"dataset_series"`
		SpanDays     int          `json:"dataset_span_days"`
		BlocksBefore int          `json:"blocks_on_disk_before"`
		BlocksAfter  int          `json:"blocks_on_disk_after"`
		Results      []compactRow `json:"results"`
	}{
		Benchmark:    "BenchmarkCompaction",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		TotalPoints:  cbTotalPoints,
		Series:       cbComps * cbMets,
		SpanDays:     cbDays,
		BlocksBefore: cbFixtures.blocksWere,
		BlocksAfter:  cbFixtures.blocksNow,
		Results:      rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_compact.json", append(data, '\n'), 0o644)
}

// BenchmarkCompaction measures what the compactor buys on a
// long-retention store: the cost of a merge+downsample pass itself, and
// a cold month-window aggregate query answered three ways — decoding
// 120 small blocks, decoding the merged blocks (sum never uses
// summaries), and reading the 5m/1h downsampled companions. Blocks on
// disk before/after and per-variant speedups land in BENCH_compact.json.
func BenchmarkCompaction(b *testing.B) {
	b.Run("merge-pass", func(b *testing.B) {
		un, _ := cbStores(b)
		_ = un
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(cbFixtures.root, fmt.Sprintf("merge-%d", i))
			cbCopyDir(b, cbFixtures.pristineDir, dir)
			s, err := tsdb.OpenSharded(4, cbOpts(dir))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := s.Compact(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			_ = os.RemoveAll(dir)
			b.StartTimer()
		}
		b.StopTimer()
		elapsed := b.Elapsed().Seconds()
		if elapsed > 0 {
			putCompactRow(compactRow{
				Name: "merge-pass", Store: "merge",
				NsPerOp:      elapsed * 1e9 / float64(b.N),
				PointsPerSec: float64(cbTotalPoints) * float64(b.N) / elapsed,
			})
		}
	})

	type tc struct {
		name      string
		compacted bool
		q         tsdb.RangeQuery
	}
	month := tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: cbSpanMS}
	mk := func(agg tsdb.Agg, step int64) tsdb.RangeQuery {
		q := month
		q.Agg, q.StepMS = agg, step
		return q
	}
	const hour = int64(3_600_000)
	cases := []tc{
		{"query-max-1h/uncompacted", false, mk(tsdb.AggMax, hour)},
		{"query-max-1h/compacted-ds", true, mk(tsdb.AggMax, hour)},
		{"query-max-5m/compacted-ds", true, mk(tsdb.AggMax, 300_000)},
		{"query-count-1h/compacted-ds", true, mk(tsdb.AggCount, hour)},
		{"query-sum-1h/compacted-raw", true, mk(tsdb.AggSum, hour)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			un, co := cbStores(b)
			store := un
			storeName := "uncompacted"
			if c.compacted {
				store, storeName = co, "compacted"
			}
			ctx := context.Background()
			if res, err := store.QueryRange(ctx, c.q); err != nil || len(res) != cbComps*cbMets {
				b.Fatalf("warmup query: %d results, err %v", len(res), err)
			}
			var dsBefore uint64
			if c.compacted {
				dsBefore = cbFixtures.coTel.DownsampledBucketsRead.Value()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.QueryRange(ctx, c.q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var dsPerOp int64
			if c.compacted {
				dsPerOp = int64(cbFixtures.coTel.DownsampledBucketsRead.Value()-dsBefore) / int64(b.N)
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				putCompactRow(compactRow{
					Name: c.name, Store: storeName,
					NsPerOp:      elapsed * 1e9 / float64(b.N),
					PointsPerSec: float64(cbTotalPoints) * float64(b.N) / elapsed,
					DsBucketsOp:  dsPerOp,
				})
			}
		})
	}

	order := []string{"merge-pass"}
	for _, c := range cases {
		order = append(order, c.name)
	}
	flushCompactJSON(order, "query-max-1h/uncompacted")

	cbFixtures.Lock()
	if cbFixtures.uncompacted != nil {
		_ = cbFixtures.uncompacted.Close()
		_ = cbFixtures.compacted.Close()
		_ = os.RemoveAll(cbFixtures.root)
		cbFixtures.uncompacted, cbFixtures.compacted = nil, nil
		cbFixtures.root, cbFixtures.pristineDir = "", ""
	}
	cbFixtures.Unlock()
}
