package sieve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Query-engine benchmark fixtures: 32 series x 8192 points, written once
// per store kind. "hot" keeps everything in sealed in-memory chunks;
// "cold" checkpoints into block files, closes, and reopens, so every
// read goes through the on-disk chunk index.
const (
	qbComps        = 8
	qbMets         = 4
	qbPointsPerSer = 8192
	qbStepGenMS    = 250
	qbSpanMS       = int64(qbPointsPerSer) * qbStepGenMS
	qbTotalPoints  = qbComps * qbMets * qbPointsPerSer
)

func qbSamples() []tsdb.Sample {
	out := make([]tsdb.Sample, 0, qbTotalPoints)
	for i := 0; i < qbPointsPerSer; i++ {
		for c := 0; c < qbComps; c++ {
			for m := 0; m < qbMets; m++ {
				out = append(out, tsdb.Sample{
					Component: fmt.Sprintf("comp-%02d", c),
					Metric:    fmt.Sprintf("metric_%d", m),
					T:         int64(i) * qbStepGenMS,
					V:         float64(i%997)*0.5 + float64(c) - float64(m)*0.25,
				})
			}
		}
	}
	return out
}

var qbFixtures struct {
	sync.Mutex
	hot     *tsdb.Sharded
	cold    *tsdb.Sharded
	coldDir string
}

// qbStore returns the shared hot or cold store, building it on first use
// (block building is expensive; benchmarks must not pay it per run).
func qbStore(b *testing.B, cold bool) *tsdb.Sharded {
	qbFixtures.Lock()
	defer qbFixtures.Unlock()
	if !cold {
		if qbFixtures.hot == nil {
			s := tsdb.NewSharded(4)
			if err := s.WriteSamples(qbSamples(), 0); err != nil {
				b.Fatal(err)
			}
			s.Flush()
			qbFixtures.hot = s
		}
		return qbFixtures.hot
	}
	if qbFixtures.cold == nil {
		dir, err := os.MkdirTemp("", "sieve-qbench-*")
		if err != nil {
			b.Fatal(err)
		}
		s, err := tsdb.OpenSharded(4, tsdb.DurabilityOptions{Dir: dir, FlushInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.WriteSamples(qbSamples(), 0); err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil { // final checkpoint: everything into blocks
			b.Fatal(err)
		}
		s, err = tsdb.OpenSharded(4, tsdb.DurabilityOptions{Dir: dir, FlushInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		qbFixtures.cold = s
		qbFixtures.coldDir = dir
	}
	return qbFixtures.cold
}

// queryRow is one BENCH_query.json entry.
type queryRow struct {
	Name         string  `json:"name"`
	Storage      string  `json:"storage"` // hot (memory chunks) or cold (block files)
	Agg          string  `json:"agg"`
	SeriesWidth  int     `json:"series_width"` // matched series per query
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	PointsPerSec float64 `json:"scanned_points_per_sec"`
}

var queryBench struct {
	sync.Mutex
	rows map[string]queryRow
}

// flushQueryJSON rewrites BENCH_query.json from the accumulated rows in
// fixed case order, tracking the read-path trajectory across PRs the way
// BENCH_ingest.json tracks the write path.
func flushQueryJSON(order []string) {
	queryBench.Lock()
	defer queryBench.Unlock()
	var rows []queryRow
	for _, name := range order {
		if r, ok := queryBench.rows[name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark   string     `json:"benchmark"`
		GoMaxProcs  int        `json:"gomaxprocs"`
		GoVersion   string     `json:"go_version"`
		TotalPoints int        `json:"dataset_points"`
		Series      int        `json:"dataset_series"`
		Results     []queryRow `json:"results"`
	}{
		Benchmark:   "BenchmarkQueryEngine",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		TotalPoints: qbTotalPoints,
		Series:      qbComps * qbMets,
		Results:     rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_query.json", append(data, '\n'), 0o644)
}

// BenchmarkQueryEngine measures the read path: raw decode vs aggregation
// push-down, hot in-memory chunks vs cold block files, and matcher
// fan-out width. Every variant returns byte-identical results to the
// naive reference (pinned by the equivalence suite); only the work per
// answer changes. Results land in BENCH_query.json.
func BenchmarkQueryEngine(b *testing.B) {
	type tc struct {
		name    string
		cold    bool
		q       tsdb.RangeQuery
		scanned int // points the query logically covers
	}
	oneSeries := qbPointsPerSer
	allSeries := qbTotalPoints
	// Two bucket widths: "fine" buckets (512 points) are narrower than a
	// sealed chunk, so every chunk straddles buckets and aggregation
	// decodes — the gain over raw is skipping the materialize+sort. With
	// "coarse" buckets (4096 points) chunks lie wholly inside buckets and
	// order-independent aggregations are answered from the chunk index
	// alone: no file read, no CRC, no decode.
	fineStep := qbSpanMS / 16
	coarseStep := qbSpanMS / 2
	cases := []tc{
		{"raw/hot/1-series", false,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS}, oneSeries},
		{"raw/cold/1-series", true,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS}, oneSeries},
		{"agg-avg-fine/hot/1-series", false,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS, Agg: tsdb.AggAvg, StepMS: fineStep}, oneSeries},
		{"agg-avg-fine/cold/1-series", true,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS, Agg: tsdb.AggAvg, StepMS: fineStep}, oneSeries},
		{"agg-max-fine/cold/1-series", true,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS, Agg: tsdb.AggMax, StepMS: fineStep}, oneSeries},
		{"agg-max-coarse/cold/1-series", true,
			tsdb.RangeQuery{Component: "comp-00", Metric: "metric_0", From: 0, To: qbSpanMS, Agg: tsdb.AggMax, StepMS: coarseStep}, oneSeries},
		{"raw/cold/32-series", true,
			tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: qbSpanMS}, allSeries},
		{"agg-avg-fine/cold/32-series", true,
			tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: qbSpanMS, Agg: tsdb.AggAvg, StepMS: fineStep}, allSeries},
		{"agg-max-coarse/cold/32-series", true,
			tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: qbSpanMS, Agg: tsdb.AggMax, StepMS: coarseStep}, allSeries},
		{"agg-count-coarse/cold/32-series", true,
			tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: qbSpanMS, Agg: tsdb.AggCount, StepMS: coarseStep}, allSeries},
		{"agg-rate-coarse/cold/32-series", true,
			tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: qbSpanMS, Agg: tsdb.AggRate, StepMS: coarseStep}, allSeries},
		{"raw/cold/8-series", true,
			tsdb.RangeQuery{Component: "comp-0?", Metric: "metric_1", From: 0, To: qbSpanMS}, 8 * qbPointsPerSer},
	}
	order := make([]string, len(cases))
	for i, c := range cases {
		order[i] = c.name
	}

	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			store := qbStore(b, c.cold)
			ctx := context.Background()
			width, err := store.QueryRange(ctx, c.q)
			if err != nil || len(width) == 0 {
				b.Fatalf("warmup query: %d results, err %v", len(width), err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.QueryRange(ctx, c.q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			elapsed := b.Elapsed().Seconds()
			if elapsed <= 0 {
				return
			}
			storage := "hot"
			if c.cold {
				storage = "cold"
			}
			queryBench.Lock()
			if queryBench.rows == nil {
				queryBench.rows = map[string]queryRow{}
			}
			queryBench.rows[c.name] = queryRow{
				Name:         c.name,
				Storage:      storage,
				Agg:          c.q.Agg.String(),
				SeriesWidth:  len(width),
				NsPerOp:      elapsed * 1e9 / float64(b.N),
				AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / int64(b.N),
				BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / int64(b.N),
				PointsPerSec: float64(c.scanned) * float64(b.N) / elapsed,
			}
			queryBench.Unlock()
		})
	}
	flushQueryJSON(order)
	// Tear the shared fixtures down: benchmarks have no package-level
	// cleanup hook, and the cold store's block directory must not pile up
	// in the system temp dir run after run. A -count=N rerun rebuilds.
	qbFixtures.Lock()
	if qbFixtures.cold != nil {
		_ = qbFixtures.cold.Close()
		_ = os.RemoveAll(qbFixtures.coldDir)
		qbFixtures.cold, qbFixtures.coldDir = nil, ""
	}
	qbFixtures.hot = nil
	qbFixtures.Unlock()
}
