package sieve

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
)

// runShareLatexArtifact runs the full pipeline on a fresh ShareLatex
// simulation (deterministic for the fixed seeds) at the given worker
// count and returns the serialized artifact.
func runShareLatexArtifact(t *testing.T, parallelism int) []byte {
	t.Helper()
	app, err := NewShareLatex(21)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultPipelineOptions()
	opts.Parallelism = parallelism
	artifact, _, err := Run(app, RandomLoad(7, 120, 200, 1800), opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalArtifact(artifact)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunParallelismDeterminism asserts the concurrent executor is
// invisible in the output: Run with Parallelism 1, 4, and GOMAXPROCS
// produces byte-identical artifacts on a ShareLatex capture.
func TestRunParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	sequential := runShareLatexArtifact(t, 1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := runShareLatexArtifact(t, par); !bytes.Equal(sequential, got) {
			t.Errorf("parallelism %d: artifact differs from sequential (%d vs %d bytes)",
				par, len(got), len(sequential))
		}
	}
}

// TestRunContextCancellation asserts context.Canceled surfaces promptly
// from mid-pipeline: the capture stage is canceled a few ticks in, and
// the simulation must not have drained the (huge) remaining pattern.
func TestRunContextCancellation(t *testing.T) {
	app, err := NewShareLatex(21)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 10
	opts := DefaultPipelineOptions()
	opts.Parallelism = 4
	opts.Capture.OnTick = func(tick int, _ int64) {
		if tick == cancelAt {
			cancel()
		}
	}
	_, _, err = RunContext(ctx, app, ConstantLoad(500, 100000), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextPreCanceled asserts an already-canceled context returns
// immediately without running any stage.
func TestRunContextPreCanceled(t *testing.T) {
	app, err := NewShareLatex(21)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = RunContext(ctx, app, ConstantLoad(500, 100), DefaultPipelineOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
