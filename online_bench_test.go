package sieve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Online-cycle benchmark: one sieved pipeline cycle over a sliding
// window, comparing the batch engine (every cycle re-queries and
// recomputes the whole window) against the incremental engine (tail-only
// window queries + Granger memoization) and the additional warm-start
// clustering shortcut. Each iteration ingests one new grid step and runs
// one cycle, exactly the steady state of a live sieved.
const (
	obWindowSteps  = 240 // 120 s window at the paper's 500 ms grid
	obStepMS       = int64(500)
	obPrefillSteps = 300
)

// obVal is the deterministic signal of series (comp, met) at tMS: even
// metrics form a sine family, odd metrics a ramp family, phase-shifted
// per component so clustering and Granger both do representative work.
func obVal(comp, met int, tMS int64) float64 {
	t := float64(tMS) / 1000
	if met%2 == 0 {
		return 100 + 30*math.Sin(t/7+float64(comp)) + float64(met)
	}
	return 50 + 20*math.Mod(t/3+float64(comp*5+met), 17)
}

func obSamples(comps, mets int, fromMS, toMS int64) []tsdb.Sample {
	var out []tsdb.Sample
	for ts := fromMS; ts < toMS; ts += obStepMS {
		for c := 0; c < comps; c++ {
			for m := 0; m < mets; m++ {
				out = append(out, tsdb.Sample{
					Component: fmt.Sprintf("comp-%02d", c),
					Metric:    fmt.Sprintf("metric_%02d", m),
					T:         ts,
					V:         obVal(c, m, ts),
				})
			}
		}
	}
	return out
}

func obGraph(comps int) *callgraph.Graph {
	g := callgraph.New()
	for c := 0; c+1 < comps; c++ {
		g.AddCall(fmt.Sprintf("comp-%02d", c), fmt.Sprintf("comp-%02d", c+1), 100)
	}
	return g
}

// onlineRow is one BENCH_online.json entry.
type onlineRow struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"` // batch | incremental | incremental+warmstart | incremental+fullrecompute
	Series      int     `json:"series"`
	WindowSteps int     `json:"window_steps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var onlineBench struct {
	sync.Mutex
	rows map[string]onlineRow
}

// flushOnlineJSON rewrites BENCH_online.json from the accumulated rows
// in fixed case order, tracking the online-cycle cost trajectory across
// PRs the way BENCH_ingest.json tracks the write path.
func flushOnlineJSON(order []string) {
	onlineBench.Lock()
	defer onlineBench.Unlock()
	var rows []onlineRow
	for _, name := range order {
		if r, ok := onlineBench.rows[name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark   string      `json:"benchmark"`
		GoMaxProcs  int         `json:"gomaxprocs"`
		GoVersion   string      `json:"go_version"`
		WindowSteps int         `json:"window_steps"`
		Results     []onlineRow `json:"results"`
	}{
		Benchmark:   "BenchmarkOnlineCycle",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		WindowSteps: obWindowSteps,
		Results:     rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_online.json", append(data, '\n'), 0o644)
}

// BenchmarkOnlineCycle measures one steady-state pipeline cycle (ingest
// one grid step, slide the window, recompute the artifact) per engine
// and series count. The incremental rows must come in well below the
// batch ("cold") rows in both time and allocations on the 64-series
// window and above — that delta is this PR's reason to exist, tracked in
// BENCH_online.json.
func BenchmarkOnlineCycle(b *testing.B) {
	type tc struct {
		name   string
		comps  int
		mets   int
		engine string
	}
	var cases []tc
	for _, shape := range []struct{ comps, mets int }{{8, 8}, {16, 16}} {
		series := shape.comps * shape.mets
		// incremental+fullrecompute forces the periodic cache-drop path
		// every cycle: with the streaming scan and pooled kernels it must
		// land within a small factor (the ISSUE's 2-3x target) of a warm
		// incremental cycle instead of paying the old cold-start cost.
		for _, engine := range []string{"batch", "incremental", "incremental+warmstart", "incremental+fullrecompute"} {
			cases = append(cases, tc{
				name:  fmt.Sprintf("%s/series=%d", engine, series),
				comps: shape.comps, mets: shape.mets,
				engine: engine,
			})
		}
	}
	order := make([]string, len(cases))
	for i, c := range cases {
		order[i] = c.name
	}

	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			opts := ServerOptions{
				AppName:          "bench",
				Shards:           4,
				StepMS:           obStepMS,
				WindowMS:         obWindowSteps * obStepMS,
				MinWindowSamples: 64,
				CallGraph:        obGraph(c.comps),
				Incremental:      c.engine != "batch",
				WarmStart:        c.engine == "incremental+warmstart",
			}
			if c.engine == "incremental+fullrecompute" {
				opts.FullRecomputeEvery = 1
			}
			srv, err := NewServer(opts)
			if err != nil {
				b.Fatal(err)
			}
			frontier := int64(obPrefillSteps) * obStepMS
			if err := srv.Store().WriteSamples(obSamples(c.comps, c.mets, 0, frontier), 0); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			// Warmup cycle: fills caches so b.N iterations measure the
			// steady state (for batch it is just a first run).
			if _, err := srv.RunPipelineOnce(ctx); err != nil {
				b.Fatal(err)
			}

			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.Store().WriteSamples(obSamples(c.comps, c.mets, frontier, frontier+obStepMS), 0); err != nil {
					b.Fatal(err)
				}
				frontier += obStepMS
				if _, err := srv.RunPipelineOnce(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			elapsed := b.Elapsed().Seconds()
			if elapsed <= 0 {
				return
			}
			onlineBench.Lock()
			if onlineBench.rows == nil {
				onlineBench.rows = map[string]onlineRow{}
			}
			onlineBench.rows[c.name] = onlineRow{
				Name:        c.name,
				Engine:      c.engine,
				Series:      c.comps * c.mets,
				WindowSteps: obWindowSteps,
				NsPerOp:     elapsed * 1e9 / float64(b.N),
				AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(b.N),
				BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(b.N),
			}
			onlineBench.Unlock()
		})
	}
	flushOnlineJSON(order)
}
