package sieve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§6). They share one cached Suite so the expensive pipeline
// runs (five ShareLatex captures, the OpenStack correct/faulty pair) are
// paid once per `go test -bench` invocation; each benchmark reports its
// artifact's headline numbers via b.ReportMetric. Sizes follow the quick
// configuration — run cmd/experiments for the paper-scale version.

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.QuickConfig())
	})
	return benchSuite
}

// benchArtifact runs one experiment per iteration and reports its values.
func benchArtifact(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for k, v := range res.Values {
				b.ReportMetric(v, k)
			}
		}
	}
}

var (
	benchCaptureOnce sync.Once
	benchCapture     *CaptureResult
	benchCaptureErr  error
)

// sharedCapture captures one quick-config ShareLatex dataset (200 ticks,
// randomized load) for the parallel pipeline benchmarks. The dataset is
// read-only in steps 2 and 3, so all worker counts share it.
func sharedCapture() (*CaptureResult, error) {
	benchCaptureOnce.Do(func() {
		app, err := NewShareLatex(42)
		if err != nil {
			benchCaptureErr = err
			return
		}
		benchCapture, benchCaptureErr = Capture(app, RandomLoad(142, 200, 200, 2500), CaptureOptions{})
	})
	return benchCapture, benchCaptureErr
}

// reduceAndDeps runs the full analysis path (Reduce + IdentifyDependencies)
// at the given worker count and returns the resulting artifact bytes.
func reduceAndDeps(ds *Dataset, workers int) ([]byte, error) {
	ctx := context.Background()
	ropts := DefaultPipelineOptions().Reduce
	ropts.Parallelism = workers
	red, err := ReduceContext(ctx, ds, ropts)
	if err != nil {
		return nil, err
	}
	graph, err := IdentifyDependenciesContext(ctx, ds, red, DepOptions{Parallelism: workers})
	if err != nil {
		return nil, err
	}
	return MarshalArtifact(&Artifact{App: ds.App, Dataset: ds, Reduction: red, Graph: graph})
}

// BenchmarkPipelineParallel measures the concurrent executor on the full
// Reduce+Deps path over a quick-config ShareLatex capture at 1, 4, and
// GOMAXPROCS workers; the wall-clock ratio between the workers=1 and
// workers=4 variants is the tracked speedup. Before timing, each variant
// is checked to produce the exact bytes of the sequential path.
func BenchmarkPipelineParallel(b *testing.B) {
	capture, err := sharedCapture()
	if err != nil {
		b.Fatal(err)
	}
	ds := capture.Dataset
	sequential, err := reduceAndDeps(ds, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=4", 4},
		{fmt.Sprintf("workers=gomaxprocs(%d)", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			got, err := reduceAndDeps(ds, bench.workers)
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(sequential, got) {
				b.Fatalf("artifact at %s differs from the sequential path", bench.name)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reduceAndDeps(ds, bench.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1MetricInventory regenerates Table 1 (metric populations
// of the evaluated applications).
func BenchmarkTable1MetricInventory(b *testing.B) {
	benchArtifact(b, sharedSuite().Table1)
}

// BenchmarkFigure3ClusteringConsistency regenerates Fig. 3 (pairwise AMI
// of cluster assignments across randomized runs; paper average 0.597).
func BenchmarkFigure3ClusteringConsistency(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure3)
}

// BenchmarkFigure4MetricReduction regenerates Fig. 4 (metrics before and
// after reduction per ShareLatex component; paper 889 -> 65).
func BenchmarkFigure4MetricReduction(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure4)
}

// BenchmarkFigure5TracingOverhead regenerates Fig. 5 (HTTP completion
// time under native / sysdig-style / tcpdump-style tracing; paper +22%
// and +7%).
func BenchmarkFigure5TracingOverhead(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure5)
}

// BenchmarkTable3MonitoringGains regenerates Table 3 (monitoring CPU,
// storage and network before/after reduction; paper -81%/-94%/-79%/-51%).
func BenchmarkTable3MonitoringGains(b *testing.B) {
	benchArtifact(b, sharedSuite().Table3)
}

// BenchmarkFigure6DependencyGraph regenerates Fig. 6 (the ShareLatex
// Granger dependency graph and its most frequent metric).
func BenchmarkFigure6DependencyGraph(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure6)
}

// BenchmarkTable4Autoscaling regenerates Table 4 (CPU-threshold vs
// Sieve-guided autoscaling under the WorldCup-shaped trace).
func BenchmarkTable4Autoscaling(b *testing.B) {
	benchArtifact(b, sharedSuite().Table4)
}

// BenchmarkTable5RCARanking regenerates Table 5 (OpenStack components
// ranked by metric novelty between correct and faulty versions).
func BenchmarkTable5RCARanking(b *testing.B) {
	benchArtifact(b, sharedSuite().Table5)
}

// BenchmarkFigure7RCAFiltering regenerates Fig. 7 (cluster novelty
// classification and the similarity-threshold edge-filtering sweep).
func BenchmarkFigure7RCAFiltering(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure7)
}

// BenchmarkFigure8RCAFinalEdges regenerates Fig. 8 (final edge
// differences among the top-5 suspect components).
func BenchmarkFigure8RCAFinalEdges(b *testing.B) {
	benchArtifact(b, sharedSuite().Figure8)
}
