package sieve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/telemetry"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// obsRow is one BENCH_obs.json entry. OverheadPct is only set on the
// instrumented half of a base/telemetry pair: the ns/op delta against
// the base, as a percentage (the budget is <= 2%).
type obsRow struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	OverheadPct *float64 `json:"overhead_pct,omitempty"`
}

var obsBench struct {
	sync.Mutex
	rows map[string]obsRow
}

func putObsRow(r obsRow) {
	obsBench.Lock()
	defer obsBench.Unlock()
	if obsBench.rows == nil {
		obsBench.rows = map[string]obsRow{}
	}
	obsBench.rows[r.Name] = r
}

// flushObsJSON rewrites BENCH_obs.json from the accumulated rows,
// computing the telemetry-overhead percentages for the ingest and query
// pairs. Rows are emitted in fixed case order.
func flushObsJSON(order []string) {
	obsBench.Lock()
	defer obsBench.Unlock()
	for _, pair := range [][2]string{
		{"ingest-base", "ingest-telemetry"},
		{"query-base", "query-telemetry"},
	} {
		base, okB := obsBench.rows[pair[0]]
		instr, okI := obsBench.rows[pair[1]]
		if !okB || !okI || base.NsPerOp <= 0 {
			continue
		}
		pct := (instr.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		instr.OverheadPct = &pct
		obsBench.rows[pair[1]] = instr
	}
	var rows []obsRow
	for _, name := range order {
		if r, ok := obsBench.rows[name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark  string   `json:"benchmark"`
		GoMaxProcs int      `json:"gomaxprocs"`
		GoVersion  string   `json:"go_version"`
		Results    []obsRow `json:"results"`
	}{
		Benchmark:  "BenchmarkTelemetry",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Results:    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644)
}

// obsSealedStore builds a sealed 32-series store for the query pair:
// enough points per series that QueryRange walks real chunks.
func obsSealedStore(b *testing.B, tel *tsdb.StoreTelemetry) *tsdb.Sharded {
	b.Helper()
	s := tsdb.NewSharded(4)
	if tel != nil {
		s.SetTelemetry(tel)
	}
	samples := make([]tsdb.Sample, 0, 2048)
	for c := 0; c < 8; c++ {
		for m := 0; m < 4; m++ {
			samples = samples[:0]
			for p := 0; p < 2048; p++ {
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("comp-%d", c),
					Metric:    fmt.Sprintf("metric_%d", m),
					T:         int64(p) * 500,
					V:         float64((p*7+c*3+m)%17) + 0.25*float64(m),
				})
			}
			if err := s.WriteSamples(samples, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.Flush()
	return s
}

// BenchmarkTelemetry measures the self-observability layer: raw
// instrument update costs (the 0 allocs/op contract — also pinned
// hard by allocation tests in internal/telemetry), the fast-path span,
// and the end-to-end overhead telemetry adds to WAL-backed ingest and
// to chunk-counted query reads (budget: <= 2%). Results are written to
// BENCH_obs.json.
func BenchmarkTelemetry(b *testing.B) {
	order := []string{
		"counter-inc", "gauge-set", "histogram-observe", "span-fast-path",
		"ingest-base", "ingest-telemetry", "query-base", "query-telemetry",
	}

	reg := telemetry.NewRegistry()
	counter := reg.Counter("bench_counter_total", "bench")
	gauge := reg.Gauge("bench_gauge", "bench")
	hist := reg.Histogram("bench_seconds", "bench", nil)
	ring := telemetry.NewTraceRing(8, time.Hour, nil) // nothing is ever slow
	op := ring.Op("bench")

	instRow := func(name string, fn func()) func(b *testing.B) {
		return func(b *testing.B) {
			allocs := testing.AllocsPerRun(1000, fn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn()
			}
			b.StopTimer()
			ns := b.Elapsed().Seconds() * 1e9 / float64(b.N)
			putObsRow(obsRow{Name: name, NsPerOp: ns, AllocsPerOp: &allocs})
		}
	}
	b.Run("counter-inc", instRow("counter-inc", func() { counter.Inc() }))
	b.Run("gauge-set", instRow("gauge-set", func() { gauge.Set(42.5) }))
	b.Run("histogram-observe", instRow("histogram-observe", func() { hist.Observe(0.0042) }))
	b.Run("span-fast-path", instRow("span-fast-path", func() {
		sp := op.Start()
		sp.FieldInt("n", 7)
		sp.End()
	}))

	// Ingest pair: WAL-backed stores (where the append/fsync histograms
	// actually fire), identical except for SetTelemetry.
	payloads := ingestPayloads()
	for _, tc := range []struct {
		name string
		tel  bool
	}{{"ingest-base", false}, {"ingest-telemetry", true}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := tsdb.OpenSharded(4, tsdb.DurabilityOptions{
				Dir:           b.TempDir(),
				Fsync:         tsdb.FsyncInterval,
				FlushInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if tc.tel {
				s.SetTelemetry(tsdb.NewStoreTelemetry(telemetry.NewRegistry()))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Write(payloads[i%len(payloads)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			putObsRow(obsRow{Name: tc.name, NsPerOp: b.Elapsed().Seconds() * 1e9 / float64(b.N)})
		})
	}

	// Query pair: sealed stores read with chunk-fate counting on vs off.
	queries := []tsdb.RangeQuery{
		{Component: "*", Metric: "*", From: 0, To: 1 << 40},
		{Component: "comp-*", Metric: "*", From: 0, To: 1 << 40, Agg: tsdb.AggMax, StepMS: 60000},
		{Component: "comp-3", Metric: "metric_1", From: 100000, To: 400000},
	}
	for _, tc := range []struct {
		name string
		tel  bool
	}{{"query-base", false}, {"query-telemetry", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var tel *tsdb.StoreTelemetry
			if tc.tel {
				tel = tsdb.NewStoreTelemetry(telemetry.NewRegistry())
			}
			s := obsSealedStore(b, tel)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.QueryRange(ctx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			putObsRow(obsRow{Name: tc.name, NsPerOp: b.Elapsed().Seconds() * 1e9 / float64(b.N)})
		})
	}

	flushObsJSON(order)
}
