// Quickstart: build a tiny three-tier application, run the full Sieve
// pipeline on it, and print what Sieve learned — which metrics matter and
// how the components depend on each other.
package main

import (
	"fmt"
	"log"

	"github.com/sieve-microservices/sieve"
)

func main() {
	// A custom topology: a load balancer fronting an API server backed by
	// a database. Each component exports a handful of metric families
	// (redundant variants of the same signals, plus constants that carry
	// no information — exactly what real services do).
	spec := sieve.AppSpec{
		Name:   "quickstart",
		TickMS: 500,
		Components: []sieve.ComponentSpec{
			{
				Name: "loadbalancer", Addr: "10.0.0.1:80",
				ServiceMS: 1, CapacityPerInstance: 2000, Entry: true,
				Calls: []sieve.ComponentCall{{Target: "api", Prob: 1}},
				Families: []sieve.MetricFamily{
					{Base: "requests", Driver: sieve.DriverRate, Noise: 0.03, Variants: []string{"rate", "rate_5m"}},
					{Base: "response_ms", Driver: sieve.DriverLatency, Noise: 0.03, Variants: []string{"mean", "p95"}},
				},
				Constants: map[string]float64{"version": 1},
			},
			{
				Name: "api", Addr: "10.0.0.2:8080",
				ServiceMS: 15, CapacityPerInstance: 800,
				Calls: []sieve.ComponentCall{{Target: "db", Prob: 0.7}},
				Families: []sieve.MetricFamily{
					{Base: "requests", Driver: sieve.DriverRate, Noise: 0.03, Variants: []string{"rate", "count"}},
					{Base: "latency_ms", Driver: sieve.DriverLatency, Noise: 0.03, Variants: []string{"mean", "p95", "p99"}},
					{Base: "memory_mb", Driver: sieve.DriverMemory, Noise: 0.02},
				},
			},
			{
				Name: "db", Addr: "10.0.0.3:5432",
				ServiceMS: 6, CapacityPerInstance: 3000,
				Families: []sieve.MetricFamily{
					{Base: "queries_rate", Driver: sieve.DriverRate, Noise: 0.03},
					{Base: "query_time_ms", Driver: sieve.DriverOwnLatency, Noise: 0.03},
				},
			},
		},
	}

	app, err := sieve.NewApp(spec, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1-3: load the app with a randomized workload, reduce metrics,
	// and identify dependencies.
	artifact, _, err := sieve.Run(app, sieve.RandomLoad(1, 300, 200, 1800), sieve.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Captured %d metrics; Sieve reduced them to %d representatives.\n\n",
		artifact.Reduction.TotalBefore(), artifact.Reduction.TotalAfter())

	for _, comp := range artifact.Dataset.Components() {
		cr := artifact.Reduction[comp]
		fmt.Printf("%s: %d metrics -> %d clusters\n", comp, cr.Total, len(cr.Clusters))
		for _, cluster := range cr.Clusters {
			fmt.Printf("  cluster %d (representative %s): %v\n", cluster.ID, cluster.Representative, cluster.Metrics)
		}
		if len(cr.Filtered) > 0 {
			fmt.Printf("  filtered as unvarying: %v\n", cr.Filtered)
		}
	}

	fmt.Printf("\nInferred dependencies (%d tested, %d bidirectional filtered):\n",
		artifact.Graph.Tested, artifact.Graph.Bidirectional)
	for _, e := range artifact.Graph.Edges {
		fmt.Printf("  %s/%s -> %s/%s (lag %dms, p=%.2g)\n",
			e.From, e.FromMetric, e.To, e.ToMetric, e.LagMS, e.PValue)
	}

	metric, n := artifact.Graph.MostFrequentMetric()
	fmt.Printf("\nBest monitoring signal: %s (appears in %d relations)\n", metric, n)
}
