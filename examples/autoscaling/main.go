// Autoscaling: the paper's first case study (§6.2) in miniature. Sieve
// analyzes ShareLatex, picks the metric that appears most often in
// Granger relations, and drives threshold scaling with it; the same
// workload is then replayed under the traditional per-component CPU rule
// and the outcomes are compared (mean CPU usage, SLA violations, number
// of scaling actions — the rows of Table 4). Thresholds for both
// policies are refined against the SLA on a peak-load calibration
// window, as the paper does.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/sieve-microservices/sieve"
)

const (
	slaMS      = 1000 // SLA: p90 entry latency below 1 second
	trailTicks = 2400 // 20 simulated minutes at 500 ms
)

func main() {
	// Phase 1: offline analysis run to learn the guiding metric.
	app, err := sieve.NewShareLatex(42)
	if err != nil {
		log.Fatal(err)
	}
	artifact, _, err := sieve.Run(app, sieve.RandomLoad(7, 360, 200, 2500), sieve.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	guide, relations := artifact.Graph.MostFrequentMetric()
	fmt.Printf("Sieve's guiding metric: %s (%d Granger relations)\n", guide, relations)
	slash := strings.IndexByte(guide, '/')
	guideComp, guideMetric := guide[:slash], guide[slash+1:]

	trace := sieve.WorldCupLoad(9, trailTicks, 200, 2400)

	// Phase 2: calibrate both policies' thresholds on an un-scaled replay
	// (the paper refines thresholds iteratively against the SLA).
	calApp, err := sieve.NewShareLatex(42)
	if err != nil {
		log.Fatal(err)
	}
	guideProbe := sieve.NewMetricProbe(calApp.Registry(guideComp), guideMetric)
	cpuProbe := sieve.NewMetricProbe(calApp.Registry("web"), "cpu_usage")
	var guideVals, cpuVals, lats []float64
	for _, rps := range trace {
		calApp.Step(rps)
		guideVals = append(guideVals, guideProbe.Value())
		cpuVals = append(cpuVals, cpuProbe.Value())
		lats = append(lats, calApp.EntryLatencyMS())
	}
	upS, downS, err := sieve.RefineThresholds(guideVals, lats, slaMS)
	if err != nil {
		log.Fatal(err)
	}
	upC, downC, err := sieve.RefineThresholds(cpuVals, lats, slaMS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated thresholds: sieve up/down = %.0f/%.0f, cpu up/down = %.1f%%/%.1f%%\n\n",
		upS, downS, upC, downC)

	sieveRules, _, err := sieve.SieveScalingPolicy(artifact, upS, downS, 10)
	if err != nil {
		log.Fatal(err)
	}
	cpuRules := sieve.CPUScalingPolicy(
		[]string{"web", "real-time", "doc-updater", "docstore", "clsi", "chat", "haproxy"},
		upC, downC, 10)

	// Phase 3: replay under each policy.
	type outcome struct {
		name       string
		violations int
		samples    int
		actions    int
		meanCPU    float64
	}
	replay := func(name string, rules []sieve.AutoscaleRule) outcome {
		a, err := sieve.NewShareLatex(42)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := sieve.NewAutoscaler(a, rules, 20)
		if err != nil {
			log.Fatal(err)
		}
		sla := sieve.NewSLATracker(slaMS, 5)
		comps := a.Components()
		var cpuSum float64
		for _, rps := range trace {
			a.Step(rps)
			engine.Step()
			sla.Observe(a.EntryLatencyMS())
			var tick float64
			for _, c := range comps {
				tick += a.Utilization(c) * 100
			}
			cpuSum += tick / float64(len(comps))
		}
		return outcome{
			name:       name,
			violations: sla.Violations(),
			samples:    sla.Samples(),
			actions:    len(engine.Actions()),
			meanCPU:    cpuSum / float64(len(trace)),
		}
	}

	results := []outcome{
		replay("CPU rule", cpuRules),
		replay("Sieve rule", sieveRules),
	}

	fmt.Printf("%-12s %-16s %-10s %s\n", "Policy", "SLA violations", "Actions", "Mean CPU/component")
	for _, r := range results {
		fmt.Printf("%-12s %4d/%-10d %-10d %.2f%%\n", r.name, r.violations, r.samples, r.actions, r.meanCPU)
	}
}
