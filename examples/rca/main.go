// Root cause analysis: the paper's second case study (§6.3) in
// miniature. Sieve analyzes a correct OpenStack deployment and one
// carrying Launchpad bug #1533942 (the Open vSwitch agent crash that
// makes VM launches fail with "No valid host was found"), then diffs the
// two artifacts to localize the fault.
package main

import (
	"fmt"
	"log"

	"github.com/sieve-microservices/sieve"
)

func main() {
	pattern := sieve.RandomLoad(3, 300, 150, 1500)
	opts := sieve.DefaultPipelineOptions()

	fmt.Println("Analyzing the correct version ...")
	correctApp, err := sieve.NewOpenStack(7, false)
	if err != nil {
		log.Fatal(err)
	}
	correct, _, err := sieve.Run(correctApp, pattern, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Analyzing the faulty version (bug #1533942 active) ...")
	faultyApp, err := sieve.NewOpenStack(7, true)
	if err != nil {
		log.Fatal(err)
	}
	faulty, _, err := sieve.Run(faultyApp, pattern, opts)
	if err != nil {
		log.Fatal(err)
	}

	report, err := sieve.Diagnose(correct, faulty, sieve.RCAOptions{SimilarityThreshold: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nComponent novelty ranking (metrics appearing/disappearing between versions):")
	for _, cd := range report.Components {
		if cd.Novelty == 0 {
			continue
		}
		fmt.Printf("  %-20s %3d changed (%d new / %d discarded) of %d\n",
			cd.Component, cd.Novelty, len(cd.New), len(cd.Discarded), cd.Total)
	}

	fmt.Println("\nFinal suspects after cluster-similarity edge filtering:")
	for _, rc := range report.Rankings {
		fmt.Printf("  #%d %-20s inspect %d metrics\n", rc.Rank, rc.Component, len(rc.Metrics))
		for i, m := range rc.Metrics {
			if i >= 4 {
				fmt.Printf("        ... and %d more\n", len(rc.Metrics)-4)
				break
			}
			fmt.Printf("        %s\n", m)
		}
	}

	fmt.Println("\nEdge events touching the suspects:")
	for _, e := range report.Edges {
		fmt.Printf("  [%s] %s/%s -> %s/%s\n", e.Kind, e.From, e.FromMetric, e.To, e.ToMetric)
	}
}
