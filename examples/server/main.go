// Server: run sieved in-process on a loopback listener with durable
// storage, drive the ShareLatex simulator against it over real HTTP —
// every scrape becomes a line-protocol POST /write covered by the
// write-ahead log — then force a pipeline run and poll /artifact for the
// live reduction, dependency graph, and autoscaling signal. Finally,
// "restart" the server: shut it down, boot a fresh one on the same data
// directory, and show that every ingested point survived.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/sieve-microservices/sieve"
)

// boot starts an embedded sieved on a loopback port, persisting to dir.
func boot(dir string) (*sieve.Server, *sieve.ServerClient, func(), error) {
	srv, err := sieve.NewServer(sieve.ServerOptions{
		AppName:  "sharelatex",
		WindowMS: 240 * 500, // slide over the last 240 ticks
		DataDir:  dir,       // WAL + compressed blocks under here
		Fsync:    "interval",
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close() // release the durable store's WAL and tickers
		return nil, nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = srv.Close() // graceful: checkpoint memory into a block
	}
	return srv, sieve.NewServerClient("http://" + ln.Addr().String()), stop, nil
}

func main() {
	dir, err := os.MkdirTemp("", "sieved-data-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First life: boot sieved with a data directory. In a real deployment
	// this is `sieved -data-dir /var/lib/sieved`; here we embed it so the
	// example is one process.
	_, client, stop, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sieved up, persisting to", dir)

	// The application under observation: the simulated ShareLatex
	// deployment, with a syscall tracer attached for the call graph.
	app, err := sieve.NewShareLatex(42)
	if err != nil {
		log.Fatal(err)
	}
	tracer := sieve.NewTracer(0, nil)
	app.AttachTracer(tracer)

	// Point a collector at the server's HTTP client: from here on, every
	// scrape ships over the wire like a Telegraf agent would.
	coll, err := sieve.NewMetricCollector(client, app.Registries()...)
	if err != nil {
		log.Fatal(err)
	}

	// Drive a 240-tick randomized load session, scraping every tick.
	fmt.Println("driving load session over HTTP...")
	pattern := sieve.RandomLoad(7, 240, 200, 2500)
	if err := sieve.DriveLoad(context.Background(), app, pattern, coll, 1); err != nil {
		log.Fatal(err)
	}

	// Upload the observed topology so Granger testing is restricted to
	// communicating component pairs.
	if err := client.PostCallGraph(sieve.CallGraphFromSyscalls(tracer.Events())); err != nil {
		log.Fatal(err)
	}

	// Normally the background driver recomputes every interval; force a
	// run so the example is deterministic and fast.
	info, err := client.RunPipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline run %d: window [%d,%d)ms, %d series -> %d clusters, %d edges (%.1fs)\n",
		info.Generation, info.Start, info.End, info.Series, info.Clusters, info.Edges,
		info.Elapsed.Seconds())

	// Poll /artifact like an autoscaler sidecar would.
	res, err := client.Artifact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact generation %d: %d -> %d metrics, %d dependency edges\n",
		res.Generation,
		res.Artifact.Reduction.TotalBefore(), res.Artifact.Reduction.TotalAfter(),
		len(res.Artifact.Graph.Edges))
	fmt.Printf("autoscaling signal: %s (%d Granger relations)\n",
		res.Signal.Metric, res.Signal.Relations)

	before, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d points in %d series across %d shards, %d writes, %d KB in\n",
		before.Points, before.Series, before.Shards, before.Writes, before.NetworkInBytes/1024)

	// Restart: shut the server down (final checkpoint seals memory into a
	// Gorilla block) and boot a fresh one on the same directory. Recovery
	// happens inside NewServer, before the listener takes traffic.
	fmt.Println("\nrestarting sieved on the same -data-dir...")
	stop()
	_, client2, stop2, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer stop2()

	after, err := client2.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d points in %d series (was %d in %d), max ingest time %dms\n",
		after.Points, after.Series, before.Points, before.Series, after.MaxTimeMS)
	if after.Points != before.Points || after.Series != before.Series {
		log.Fatalf("restart lost data: %d/%d -> %d/%d points/series",
			before.Points, before.Series, after.Points, after.Series)
	}

	// The recovered store serves the same points the first life stored.
	pts, err := client2.Query("web", sieve.ShareLatexHubMetric, 0, after.MaxTimeMS+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after restart: %d points of web/%s survived\n",
		len(pts), sieve.ShareLatexHubMetric)
}
