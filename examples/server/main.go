// Server: run sieved in-process on a loopback listener, drive the
// ShareLatex simulator against it over real HTTP — every scrape becomes
// a line-protocol POST /write — then force a pipeline run and poll
// /artifact for the live reduction, dependency graph, and autoscaling
// signal, exactly the loop a production deployment would run.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/sieve-microservices/sieve"
)

func main() {
	// Boot sieved on a loopback port. In a real deployment this is the
	// standalone `sieved` binary; here we embed it so the example is one
	// process.
	srv, err := sieve.NewServer(sieve.ServerOptions{
		AppName:  "sharelatex",
		WindowMS: 240 * 500, // slide over the last 240 ticks
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("sieved listening on", base)

	// The application under observation: the simulated ShareLatex
	// deployment, with a syscall tracer attached for the call graph.
	app, err := sieve.NewShareLatex(42)
	if err != nil {
		log.Fatal(err)
	}
	tracer := sieve.NewTracer(0, nil)
	app.AttachTracer(tracer)

	// Point a collector at the server's HTTP client: from here on, every
	// scrape ships over the wire like a Telegraf agent would.
	client := sieve.NewServerClient(base)
	coll, err := sieve.NewMetricCollector(client, app.Registries()...)
	if err != nil {
		log.Fatal(err)
	}

	// Drive a 240-tick randomized load session, scraping every tick.
	fmt.Println("driving load session over HTTP...")
	pattern := sieve.RandomLoad(7, 240, 200, 2500)
	if err := sieve.DriveLoad(context.Background(), app, pattern, coll, 1); err != nil {
		log.Fatal(err)
	}

	// Upload the observed topology so Granger testing is restricted to
	// communicating component pairs.
	if err := client.PostCallGraph(sieve.CallGraphFromSyscalls(tracer.Events())); err != nil {
		log.Fatal(err)
	}

	// Normally the background driver recomputes every interval; force a
	// run so the example is deterministic and fast.
	info, err := client.RunPipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline run %d: window [%d,%d)ms, %d series -> %d clusters, %d edges (%.1fs)\n",
		info.Generation, info.Start, info.End, info.Series, info.Clusters, info.Edges,
		info.Elapsed.Seconds())

	// Poll /artifact like an autoscaler sidecar would.
	for i := 0; i < 10; i++ {
		res, err := client.Artifact()
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		fmt.Printf("artifact generation %d: %d -> %d metrics, %d dependency edges\n",
			res.Generation,
			res.Artifact.Reduction.TotalBefore(), res.Artifact.Reduction.TotalAfter(),
			len(res.Artifact.Graph.Edges))
		fmt.Printf("autoscaling signal: %s (%d Granger relations)\n",
			res.Signal.Metric, res.Signal.Relations)
		break
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d points in %d series across %d shards, %d writes, %d KB in\n",
		stats.Points, stats.Series, stats.Shards, stats.Writes, stats.NetworkInBytes/1024)
}
