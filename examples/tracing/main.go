// Tracing: extract a microservice call graph the way Sieve does (§3.1),
// comparing the sysdig-style syscall tracer (process context included)
// with tcpdump-style packet capture (addresses only, needs an external
// address map and breaks under NAT).
package main

import (
	"fmt"
	"log"

	"github.com/sieve-microservices/sieve"
)

func main() {
	app, err := sieve.NewShareLatex(42)
	if err != nil {
		log.Fatal(err)
	}

	tracer := sieve.NewTracer(1<<16, nil)
	pcap := sieve.NewPacketCapture(128)
	app.AttachTracer(tracer)
	app.AttachPacketCapture(pcap)

	// Drive some load so every call edge is exercised.
	for i := 0; i < 60; i++ {
		app.Step(800)
	}

	// sysdig path: events carry process names, no external knowledge
	// needed.
	fromSyscalls := sieve.CallGraphFromSyscalls(tracer.Events())
	fmt.Printf("syscall tracer: %d events observed, %d captured\n",
		tracer.Stats().Observed, tracer.Stats().Captured)
	fmt.Printf("call graph: %d components, %d edges\n\n",
		len(fromSyscalls.Components()), len(fromSyscalls.Edges()))
	fmt.Println(fromSyscalls.DOT())

	// tcpdump path: only address pairs; an address map must be supplied,
	// and anything it misses is silently lost.
	fmt.Printf("packet capture: %d records, %d bytes\n",
		pcap.Stats().Records, pcap.Stats().Bytes)
	partialMap := map[string]string{
		"10.1.0.1:80":   "haproxy",
		"10.1.0.2:8080": "web",
		// ... the other 13 components' addresses are "unknown" here.
	}
	fromPackets := sieve.CallGraphFromPackets(pcap.AddressPairs(), partialMap)
	fmt.Printf("with a partial address map the packet-capture graph sees only %d edge(s): %v\n",
		len(fromPackets.Edges()), fromPackets.Edges())
}
