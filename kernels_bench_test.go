package sieve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/granger"
	"github.com/sieve-microservices/sieve/internal/kshape"
	"github.com/sieve-microservices/sieve/internal/mathx"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Kernel microbenchmarks: the hot analysis primitives this repo's
// pipeline is built from, measured in isolation so BENCH_kernels.json
// tracks their cost trajectory the way BENCH_online.json tracks whole
// cycles — FFT (complex vs the half-size real path), the SBD distance
// matrix over cached spectra, one pooled Granger pair, and a streaming
// full-window rebuild.

// kernelRow is one BENCH_kernels.json entry.
type kernelRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var kernelBench struct {
	sync.Mutex
	rows map[string]kernelRow
}

func flushKernelsJSON(order []string) {
	kernelBench.Lock()
	defer kernelBench.Unlock()
	var rows []kernelRow
	for _, name := range order {
		if r, ok := kernelBench.rows[name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark  string      `json:"benchmark"`
		GoMaxProcs int         `json:"gomaxprocs"`
		GoVersion  string      `json:"go_version"`
		Results    []kernelRow `json:"results"`
	}{
		Benchmark:  "BenchmarkKernels",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Results:    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_kernels.json", append(data, '\n'), 0o644)
}

// runKernelCase measures fn as one benchmark case and records its row.
func runKernelCase(b *testing.B, name string, fn func(b *testing.B)) {
	b.Run(name, func(b *testing.B) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ReportAllocs()
		b.ResetTimer()
		fn(b)
		b.StopTimer()
		runtime.ReadMemStats(&after)
		elapsed := b.Elapsed().Seconds()
		if elapsed <= 0 {
			return
		}
		kernelBench.Lock()
		if kernelBench.rows == nil {
			kernelBench.rows = map[string]kernelRow{}
		}
		kernelBench.rows[name] = kernelRow{
			Name:        name,
			NsPerOp:     elapsed * 1e9 / float64(b.N),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(b.N),
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(b.N),
		}
		kernelBench.Unlock()
	})
}

func kernelSeries(comp, met, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = obVal(comp, met, int64(i)*obStepMS)
	}
	return out
}

func BenchmarkKernels(b *testing.B) {
	var order []string

	// FFT: the full complex transform against the half-size real path
	// every correlation in the pipeline now takes.
	for _, n := range []int{256, 1024, 4096} {
		x := kernelSeries(1, 2, n)
		cbuf := make([]complex128, n)
		name := fmt.Sprintf("fft/complex/n=%d", n)
		order = append(order, name)
		runKernelCase(b, name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, v := range x {
					cbuf[j] = complex(v, 0)
				}
				mathx.FFT(cbuf)
			}
		})

		rbuf := make([]complex128, n)
		name = fmt.Sprintf("fft/real/n=%d", n)
		order = append(order, name)
		runKernelCase(b, name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mathx.RealFFT(rbuf, x, n)
			}
		})
	}

	// SBD distance matrix per component width: what the silhouette sweep
	// pays per candidate component, with per-series spectra cached.
	for _, width := range []int{8, 16, 32} {
		series := make([][]float64, width)
		for i := range series {
			series[i] = kernelSeries(i, i%5, obWindowSteps)
		}
		name := fmt.Sprintf("sbd_matrix/width=%d/len=%d", width, obWindowSteps)
		order = append(order, name)
		runKernelCase(b, name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kshape.PairwiseSBD(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Granger per pair: one pooled bidirectional test at window length.
	{
		x := kernelSeries(0, 1, obWindowSteps)
		y := kernelSeries(1, 1, obWindowSteps)
		var s granger.Scratch
		opts := granger.Options{MaxLag: 1}
		name := fmt.Sprintf("granger/pair/len=%d", obWindowSteps)
		order = append(order, name)
		runKernelCase(b, name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := granger.DirectionWith(x, y, opts, &s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Full-rebuild assemble: the streaming scan decoding a whole window
	// straight into bucket rings plus dataset assembly — the cost a
	// forced full recompute pays on top of a warm incremental cycle.
	{
		const comps, mets = 8, 8
		db := newBenchStore(b, comps, mets)
		cache := core.NewWindowCache("bench", obStepMS)
		end := int64(obWindowSteps) * obStepMS
		name := fmt.Sprintf("rebuild/series=%d/steps=%d", comps*mets, obWindowSteps)
		order = append(order, name)
		runKernelCase(b, name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cache.Invalidate()
				if _, _, err := cache.Advance(db, 0, end); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	flushKernelsJSON(order)
}

// newBenchStore prefills a sharded store with one window of the online
// benchmark's signal.
func newBenchStore(b *testing.B, comps, mets int) *tsdb.Sharded {
	b.Helper()
	st := tsdb.NewSharded(4)
	if err := st.WriteSamples(obSamples(comps, mets, 0, int64(obWindowSteps)*obStepMS), 0); err != nil {
		b.Fatal(err)
	}
	st.Flush()
	return st
}
