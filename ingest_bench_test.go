package sieve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/promremote"
	"github.com/sieve-microservices/sieve/internal/snappy"
	"github.com/sieve-microservices/sieve/internal/telemetry"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// ingestPointsPerBatch is the size of one pre-encoded write batch:
// 16 components x 8 metrics, about the shape of one collector scrape.
const ingestPointsPerBatch = 16 * 8

// ingestPayloads pre-encodes 256 line-protocol batches spread over 32
// component namespaces (4096 distinct series), so concurrent writers hit
// different shards instead of convoying on one series.
func ingestPayloads() [][]byte {
	const batches, comps, mets = 256, 16, 8
	payloads := make([][]byte, batches)
	samples := make([]tsdb.Sample, 0, comps*mets)
	for i := range payloads {
		samples = samples[:0]
		for c := 0; c < comps; c++ {
			for m := 0; m < mets; m++ {
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("comp-%03d-%02d", i%32, c),
					Metric:    fmt.Sprintf("metric_%02d", m),
					T:         int64(i) * 500,
					V:         float64(i*c) + float64(m)*0.25,
				})
			}
		}
		payloads[i] = tsdb.EncodeLineProtocol(samples)
	}
	return payloads
}

// ingestRow is one BENCH_ingest.json entry.
type ingestRow struct {
	Name        string `json:"name"`
	Shards      int    `json:"shards"`
	PointsPerOp int    `json:"points_per_op"`
	// Writers is the concurrent-writer count of a RunParallel row (0 =
	// the default GOMAXPROCS-driven parallelism of the older rows).
	Writers      int     `json:"writers,omitempty"`
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec"`
	// WALBytesPerSample is the on-disk WAL cost per stored sample of a
	// durable row (0 for in-memory rows) — the v2 dictionary encoding's
	// self-certifying size column.
	WALBytesPerSample float64 `json:"wal_bytes_per_sample,omitempty"`
}

var ingestBench struct {
	sync.Mutex
	rows  map[string]ingestRow
	order []string
}

// recordIngestRow accumulates one result row in first-recorded order, so
// BenchmarkShardedIngest and BenchmarkRemoteWriteIngest land in the same
// BENCH_ingest.json regardless of which runs (the other's rows are
// simply absent).
func recordIngestRow(r ingestRow) {
	ingestBench.Lock()
	defer ingestBench.Unlock()
	if ingestBench.rows == nil {
		ingestBench.rows = map[string]ingestRow{}
	}
	if _, ok := ingestBench.rows[r.Name]; !ok {
		ingestBench.order = append(ingestBench.order, r.Name)
	}
	ingestBench.rows[r.Name] = r
}

// flushIngestJSON rewrites BENCH_ingest.json from the accumulated rows
// so the ingestion-throughput trajectory is tracked across PRs.
func flushIngestJSON() {
	ingestBench.Lock()
	defer ingestBench.Unlock()
	var rows []ingestRow
	for _, name := range ingestBench.order {
		rows = append(rows, ingestBench.rows[name])
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark  string      `json:"benchmark"`
		GoMaxProcs int         `json:"gomaxprocs"`
		GoVersion  string      `json:"go_version"`
		Results    []ingestRow `json:"results"`
	}{
		Benchmark:  "BenchmarkShardedIngest+BenchmarkRemoteWriteIngest",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Results:    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0o644)
}

// BenchmarkShardedIngest compares concurrent line-protocol write
// throughput of the single-mutex DB against the sharded store at
// increasing shard counts. Every variant stores identical points (pinned
// by TestShardedMatchesDBAtAnyShardCount in internal/tsdb); only lock
// contention changes. Results are also written to BENCH_ingest.json.
func BenchmarkShardedIngest(b *testing.B) {
	payloads := ingestPayloads()
	type tc struct {
		name    string
		shards  int  // 0 marks the plain DB baseline
		durable bool // WAL-enabled store (tracks the durability overhead)
		fsync   tsdb.FsyncPolicy
		// writers: 0 = RunParallel at default parallelism (the legacy
		// rows), 1 = a strictly serial loop, n>1 = RunParallel with n
		// concurrent writer goroutines regardless of GOMAXPROCS.
		writers int
	}
	cases := []tc{{name: "db-single-mutex"}, {name: "shards=1", shards: 1}, {name: "shards=2", shards: 2}, {name: "shards=4", shards: 4}, {name: "shards=8", shards: 8}}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		cases = append(cases, tc{name: fmt.Sprintf("shards=%d", p), shards: p})
	}
	// WAL-enabled variant at the same shard count as the in-memory
	// shards=4 row: the delta between the two is the WAL's ingest cost
	// (encode + CRC + buffered write; fsync rides the background ticker).
	cases = append(cases, tc{name: "shards=4+wal", shards: 4, durable: true})
	// FsyncAlways rows: writers=1 is the serial-fsync baseline (every
	// append pays its own fsync — the pre-group-commit equivalent);
	// writers=4/8 is where the leader/follower queue coalesces waiters
	// into shared fsyncs, which is invisible to a sequential bench.
	cases = append(cases,
		tc{name: "shards=4+wal-always/writers=1", shards: 4, durable: true, fsync: tsdb.FsyncAlways, writers: 1},
		tc{name: "shards=4+wal-always/writers=4", shards: 4, durable: true, fsync: tsdb.FsyncAlways, writers: 4},
		tc{name: "shards=4+wal-always/writers=8", shards: 4, durable: true, fsync: tsdb.FsyncAlways, writers: 8},
	)

	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var store tsdb.Store
			var durStore *tsdb.Sharded
			var storeTel *tsdb.StoreTelemetry
			switch {
			case c.durable:
				ds, err := tsdb.OpenSharded(c.shards, tsdb.DurabilityOptions{
					Dir:           b.TempDir(),
					Fsync:         c.fsync,
					FlushInterval: -1, // measure the WAL alone, not block flushes
				})
				if err != nil {
					b.Fatal(err)
				}
				defer ds.Close()
				storeTel = tsdb.NewStoreTelemetry(telemetry.NewRegistry())
				ds.SetTelemetry(storeTel)
				durStore = ds
				store = ds
			case c.shards == 0:
				store = tsdb.New()
			default:
				store = tsdb.NewSharded(c.shards)
			}
			var idx atomic.Int64
			writeNext := func() bool {
				p := payloads[int(idx.Add(1))%len(payloads)]
				if _, err := store.Write(p); err != nil {
					b.Error(err)
					return false
				}
				return true
			}
			b.ReportAllocs()
			if c.writers > 1 {
				b.SetParallelism((c.writers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			}
			b.ResetTimer()
			if c.writers == 1 {
				for i := 0; i < b.N; i++ {
					if !writeNext() {
						return
					}
				}
			} else {
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if !writeNext() {
							return
						}
					}
				})
			}
			b.StopTimer()
			var walBytesPerSample float64
			if durStore != nil && b.N > 0 {
				walBytesPerSample = float64(durStore.WALSizeBytes()) / (float64(b.N) * ingestPointsPerBatch)
			}
			if c.fsync == tsdb.FsyncAlways && b.N >= 200 {
				// The group-commit telemetry must move under FsyncAlways
				// load: every leader sync observes its cohort size. Gated
				// on b.N so the CI -benchtime 1x smoke run stays a pure
				// compile check. Saved fsyncs are reported, not asserted:
				// whether waiters pile up behind an in-flight fsync here
				// depends on the host disk's fsync latency (a fast enough
				// disk drains each waiter before the next arrives), so the
				// coalescing arithmetic is pinned deterministically by
				// TestGroupCommitBatchedAppendsShareOneFsync instead.
				if storeTel.WALGroupCommitBatches.Count() == 0 {
					b.Error("sieve_wal_group_commit_batches never observed a leader fsync")
				}
				b.Logf("group-commit leader fsyncs=%d fsyncs saved=%d",
					storeTel.WALGroupCommitBatches.Count(), storeTel.WALFsyncsSaved.Value())
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed <= 0 {
				return
			}
			pps := float64(ingestPointsPerBatch) * float64(b.N) / elapsed
			b.ReportMetric(pps, "points/s")
			recordIngestRow(ingestRow{
				Name:              c.name,
				Shards:            c.shards,
				PointsPerOp:       ingestPointsPerBatch,
				Writers:           c.writers,
				NsPerOp:           b.Elapsed().Seconds() * 1e9 / float64(b.N),
				PointsPerSec:      pps,
				WALBytesPerSample: walBytesPerSample,
			})
		})
	}
	flushIngestJSON()
}

// remotePayloads renders the exact batches of ingestPayloads as
// snappy-compressed remote-write bodies: one TimeSeries per series,
// labeled {__name__: metric, job: component}, as Client.WriteRemote and
// any real Prometheus sender would put them on the wire.
func remotePayloads() [][]byte {
	payloads := ingestPayloads()
	bodies := make([][]byte, len(payloads))
	for i, p := range payloads {
		samples, err := tsdb.ParseLineProtocol(p)
		if err != nil {
			panic(err)
		}
		var req promremote.WriteRequest
		index := map[string]int{}
		for _, s := range samples {
			key := s.Key()
			j, ok := index[key]
			if !ok {
				j = len(req.TimeSeries)
				index[key] = j
				req.TimeSeries = append(req.TimeSeries, promremote.TimeSeries{
					Labels: []promremote.Label{
						{Name: promremote.MetricNameLabel, Value: s.Metric},
						{Name: "job", Value: s.Component},
					},
				})
			}
			req.TimeSeries[j].Samples = append(req.TimeSeries[j].Samples,
				promremote.Sample{Value: s.V, TimestampMS: s.T})
		}
		bodies[i] = snappy.Encode(promremote.Marshal(&req))
	}
	return bodies
}

// BenchmarkRemoteWriteIngest measures the full remote-write receive
// path — snappy decode, protobuf unmarshal, label mapping, and the same
// IngestParsed call /write ends in — over pre-encoded wire bodies
// carrying the identical points as BenchmarkShardedIngest, so the two
// families of BENCH_ingest.json rows are directly comparable per
// sample. Target: at most ~1.5x the line-protocol cost per sample.
func BenchmarkRemoteWriteIngest(b *testing.B) {
	bodies := remotePayloads()
	for _, shards := range []int{1, 4} {
		name := fmt.Sprintf("remote-write/shards=%d", shards)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := tsdb.NewSharded(shards)
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					body := bodies[int(idx.Add(1))%len(bodies)]
					start := time.Now()
					plain, err := snappy.Decode(body)
					if err != nil {
						b.Error(err)
						return
					}
					req, err := promremote.Unmarshal(plain)
					if err != nil {
						b.Error(err)
						return
					}
					samples := make([]tsdb.Sample, 0, req.SampleCount())
					for i := range req.TimeSeries {
						ts := &req.TimeSeries[i]
						component, metric, err := promremote.MapSeries(ts.Labels, "job")
						if err != nil {
							b.Error(err)
							return
						}
						for _, smp := range ts.Samples {
							samples = append(samples, tsdb.Sample{
								Component: component, Metric: metric,
								T: smp.TimestampMS, V: smp.Value,
							})
						}
					}
					if _, err := store.IngestParsed(samples, len(body), start); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed <= 0 {
				return
			}
			pps := float64(ingestPointsPerBatch) * float64(b.N) / elapsed
			b.ReportMetric(pps, "points/s")
			recordIngestRow(ingestRow{
				Name:         name,
				Shards:       shards,
				PointsPerOp:  ingestPointsPerBatch,
				NsPerOp:      b.Elapsed().Seconds() * 1e9 / float64(b.N),
				PointsPerSec: pps,
			})
		})
	}
	flushIngestJSON()
}
