package sieve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// ingestPointsPerBatch is the size of one pre-encoded write batch:
// 16 components x 8 metrics, about the shape of one collector scrape.
const ingestPointsPerBatch = 16 * 8

// ingestPayloads pre-encodes 256 line-protocol batches spread over 32
// component namespaces (4096 distinct series), so concurrent writers hit
// different shards instead of convoying on one series.
func ingestPayloads() [][]byte {
	const batches, comps, mets = 256, 16, 8
	payloads := make([][]byte, batches)
	samples := make([]tsdb.Sample, 0, comps*mets)
	for i := range payloads {
		samples = samples[:0]
		for c := 0; c < comps; c++ {
			for m := 0; m < mets; m++ {
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("comp-%03d-%02d", i%32, c),
					Metric:    fmt.Sprintf("metric_%02d", m),
					T:         int64(i) * 500,
					V:         float64(i*c) + float64(m)*0.25,
				})
			}
		}
		payloads[i] = tsdb.EncodeLineProtocol(samples)
	}
	return payloads
}

// ingestRow is one BENCH_ingest.json entry.
type ingestRow struct {
	Name         string  `json:"name"`
	Shards       int     `json:"shards"`
	PointsPerOp  int     `json:"points_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec"`
}

var ingestBench struct {
	sync.Mutex
	rows map[string]ingestRow
}

// flushIngestJSON rewrites BENCH_ingest.json from the accumulated rows
// so the ingestion-throughput trajectory is tracked across PRs. Rows are
// emitted in fixed case order.
func flushIngestJSON(order []string) {
	ingestBench.Lock()
	defer ingestBench.Unlock()
	var rows []ingestRow
	for _, name := range order {
		if r, ok := ingestBench.rows[name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark  string      `json:"benchmark"`
		GoMaxProcs int         `json:"gomaxprocs"`
		GoVersion  string      `json:"go_version"`
		Results    []ingestRow `json:"results"`
	}{
		Benchmark:  "BenchmarkShardedIngest",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Results:    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0o644)
}

// BenchmarkShardedIngest compares concurrent line-protocol write
// throughput of the single-mutex DB against the sharded store at
// increasing shard counts. Every variant stores identical points (pinned
// by TestShardedMatchesDBAtAnyShardCount in internal/tsdb); only lock
// contention changes. Results are also written to BENCH_ingest.json.
func BenchmarkShardedIngest(b *testing.B) {
	payloads := ingestPayloads()
	type tc struct {
		name    string
		shards  int  // 0 marks the plain DB baseline
		durable bool // WAL-enabled store (tracks the durability overhead)
	}
	cases := []tc{{"db-single-mutex", 0, false}, {"shards=1", 1, false}, {"shards=2", 2, false}, {"shards=4", 4, false}, {"shards=8", 8, false}}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		cases = append(cases, tc{fmt.Sprintf("shards=%d", p), p, false})
	}
	// WAL-enabled variant at the same shard count as the in-memory
	// shards=4 row: the delta between the two is the WAL's ingest cost
	// (encode + CRC + buffered write; fsync rides the background ticker).
	cases = append(cases, tc{"shards=4+wal", 4, true})
	order := make([]string, len(cases))
	for i, c := range cases {
		order[i] = c.name
	}

	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var store tsdb.Store
			switch {
			case c.durable:
				ds, err := tsdb.OpenSharded(c.shards, tsdb.DurabilityOptions{
					Dir:           b.TempDir(),
					Fsync:         tsdb.FsyncInterval,
					FlushInterval: -1, // measure the WAL alone, not block flushes
				})
				if err != nil {
					b.Fatal(err)
				}
				defer ds.Close()
				store = ds
			case c.shards == 0:
				store = tsdb.New()
			default:
				store = tsdb.NewSharded(c.shards)
			}
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p := payloads[int(idx.Add(1))%len(payloads)]
					if _, err := store.Write(p); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed <= 0 {
				return
			}
			pps := float64(ingestPointsPerBatch) * float64(b.N) / elapsed
			b.ReportMetric(pps, "points/s")
			ingestBench.Lock()
			if ingestBench.rows == nil {
				ingestBench.rows = map[string]ingestRow{}
			}
			ingestBench.rows[c.name] = ingestRow{
				Name:         c.name,
				Shards:       c.shards,
				PointsPerOp:  ingestPointsPerBatch,
				NsPerOp:      b.Elapsed().Seconds() * 1e9 / float64(b.N),
				PointsPerSec: pps,
			}
			ingestBench.Unlock()
		})
	}
	flushIngestJSON(order)
}
