module github.com/sieve-microservices/sieve

go 1.22
