// Package sieve is a from-scratch Go reproduction of "Sieve: Actionable
// Insights from Monitored Metrics in Distributed Systems" (Thalheim et
// al., ACM/IFIP/USENIX Middleware 2017).
//
// Sieve turns the flood of metrics a microservices application exports
// into a small set of actionable signals in three steps:
//
//  1. Load the application with a workload generator while recording all
//     metrics as time series and extracting the inter-component call
//     graph from a syscall-level trace (no application changes).
//  2. Reduce each component's metrics: drop unvarying series, cluster
//     the rest by shape (k-Shape over the shape-based distance), and
//     keep one representative metric per cluster.
//  3. Identify dependencies: Granger-causality tests between the
//     representative metrics of communicating components yield a typed
//     dependency graph (metric, direction, lag, significance), with
//     bidirectional results filtered as confounded.
//
// The resulting Artifact drives the paper's two case studies, both
// implemented here: threshold autoscaling guided by the metric that
// appears most often in Granger relations (Table 4), and root-cause
// analysis that diffs the artifacts of a correct and a faulty version
// (Table 5, Figures 7-8).
//
// Everything the paper's deployment depended on is implemented in this
// module against the standard library alone: the statistics stack (FFT,
// OLS, F/ADF tests, k-Shape, AMI), the monitoring plane (metric
// registries, a scraping collector, a Gorilla-compressed time-series
// store, sysdig/tcpdump-style tracers), and deterministic simulators of
// the two evaluated applications (ShareLatex and OpenStack, the latter
// with Launchpad bug #1533942 as a switchable fault).
//
// Beyond the paper's offline batch job, the module ships sieved
// (NewServer, Serve): a long-running server with sharded line-protocol
// ingestion over HTTP and an online driver that re-runs the analysis
// over a sliding window, serving the latest Artifact — and the live
// autoscaling signal — from its /artifact endpoint. With
// ServerOptions.DataDir set, the store is durable: writes are covered by
// a per-shard CRC-checked write-ahead log and periodically sealed into
// immutable Gorilla-compressed block files with configurable retention,
// so a killed server recovers its data on restart (see
// docs/ARCHITECTURE.md for the storage engine's design).
//
// # Quick start
//
//	app, _ := sieve.NewShareLatex(42)
//	pattern := sieve.RandomLoad(1, 600, 100, 1200)
//	artifact, capture, _ := sieve.Run(app, pattern, sieve.DefaultPipelineOptions())
//	fmt.Println(artifact.Reduction.TotalBefore(), "->", artifact.Reduction.TotalAfter())
//	metric, _ := artifact.Graph.MostFrequentMetric()
//	fmt.Println("autoscaling signal:", metric)
//	_ = capture
package sieve

import (
	"context"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/app/openstack"
	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
	"github.com/sieve-microservices/sieve/internal/autoscale"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/rca"
	"github.com/sieve-microservices/sieve/internal/server"
	"github.com/sieve-microservices/sieve/internal/trace"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// App is a running microservice application simulation. It exposes
// metric registries per component, accepts external load via Step, emits
// trace events for call-graph extraction, and supports runtime scaling
// and fault injection.
type App = app.App

// AppSpec declares a simulated application topology.
type AppSpec = app.Spec

// ComponentSpec declares one microservice component of an AppSpec.
type ComponentSpec = app.ComponentSpec

// ComponentCall declares a downstream dependency of a component.
type ComponentCall = app.Call

// MetricFamily declares a group of related exported metrics derived from
// one simulated signal.
type MetricFamily = app.Family

// FaultImpact describes how an active fault distorts one component.
type FaultImpact = app.FaultImpact

// Metric family drivers: the simulated signal feeding a family.
const (
	// DriverUtil is the component's utilization.
	DriverUtil = app.DriverUtil
	// DriverRate is the arrival rate (requests/second).
	DriverRate = app.DriverRate
	// DriverLatency is the end-to-end latency including lagged
	// downstream contributions (milliseconds).
	DriverLatency = app.DriverLatency
	// DriverOwnLatency is the component-local latency (milliseconds).
	DriverOwnLatency = app.DriverOwnLatency
	// DriverErrors is the error rate (errors/second).
	DriverErrors = app.DriverErrors
	// DriverMemory is the memory footprint.
	DriverMemory = app.DriverMemory
	// DriverQueue is the queue depth.
	DriverQueue = app.DriverQueue
	// DriverConst is a constant (for build-info style metrics).
	DriverConst = app.DriverConst
)

// Pattern is a load trace: external requests/second per simulation tick.
type Pattern = loadgen.Pattern

// Dataset is a captured load run: every metric resampled onto a regular
// grid plus the observed call graph.
type Dataset = core.Dataset

// Artifact is the pipeline's end product: dataset, per-component metric
// reductions, and the Granger dependency graph.
type Artifact = core.Artifact

// CaptureResult bundles a dataset with the monitoring-plane handles for
// resource accounting.
type CaptureResult = core.CaptureResult

// Reduction maps components to their metric reductions (step 2 output).
type Reduction = core.Reduction

// ComponentReduction is one component's clusters and representatives.
type ComponentReduction = core.ComponentReduction

// DependencyGraph is the step-3 output: directed metric-level edges with
// lags and significance.
type DependencyGraph = core.DependencyGraph

// DependencyEdge is one inferred dependency.
type DependencyEdge = core.DependencyEdge

// PipelineOptions bundles per-step pipeline options.
type PipelineOptions = core.PipelineOptions

// CaptureOptions tunes step 1 (scrape cadence, tracer size, allowlist).
type CaptureOptions = core.CaptureOptions

// ReduceOptions tunes step 2 (cluster count range, variance threshold).
type ReduceOptions = core.ReduceOptions

// DepOptions tunes step 3 (delay bound, significance level).
type DepOptions = core.DepOptions

// AutoscaleRule is one threshold scaling rule.
type AutoscaleRule = autoscale.Rule

// AutoscaleEngine evaluates scaling rules against a running App.
type AutoscaleEngine = autoscale.Engine

// AutoscaleAction is one executed scaling decision.
type AutoscaleAction = autoscale.Action

// SLATracker counts violations of a p90-latency SLA.
type SLATracker = autoscale.SLATracker

// RCAOptions tunes the root-cause-analysis engine.
type RCAOptions = rca.Options

// RCAReport is the five-step RCA output: component novelty ranking,
// cluster diffs, filtered edge events, and the final suspect list.
type RCAReport = rca.Report

// NewShareLatex builds the simulated ShareLatex deployment (15
// components, ~889 metrics) used by the autoscaling case study.
func NewShareLatex(seed int64) (*App, error) {
	return sharelatex.New(seed)
}

// ShareLatexHubMetric is the metric the paper identified as the best
// autoscaling signal for ShareLatex.
const ShareLatexHubMetric = sharelatex.HubMetric

// NewOpenStack builds the simulated OpenStack deployment (16 components,
// 508 metrics). faulty activates Launchpad bug #1533942 (the Open
// vSwitch agent crash behind "No valid host was found").
func NewOpenStack(seed int64, faulty bool) (*App, error) {
	return openstack.New(seed, faulty)
}

// NewApp builds an application from a custom topology spec.
func NewApp(spec AppSpec, seed int64) (*App, error) {
	return app.New(spec, seed)
}

// ConstantLoad returns a flat load pattern.
func ConstantLoad(rps float64, ticks int) Pattern {
	return loadgen.Constant(rps, ticks)
}

// RandomLoad returns the randomized workload used by the paper's
// robustness experiments (piecewise levels with ramps and jitter).
func RandomLoad(seed int64, ticks int, minRPS, maxRPS float64) Pattern {
	return loadgen.Random(seed, ticks, minRPS, maxRPS)
}

// WorldCupLoad returns a trace with the diurnal-plus-spikes shape of the
// WorldCup'98 HTTP log used by the autoscaling experiment.
func WorldCupLoad(seed int64, ticks int, baseRPS, peakRPS float64) Pattern {
	return loadgen.WorldCup(seed, ticks, baseRPS, peakRPS)
}

// DefaultPipelineOptions returns the paper's parameters: scrape every
// tick, variance threshold 0.002, k in [2,7] with name seeding, 500 ms
// delay bound, alpha 0.05. The Parallelism knob is left at 0, meaning
// the analysis stages fan out to runtime.GOMAXPROCS(0) workers; results
// are bit-identical at any worker count, so this only affects speed.
func DefaultPipelineOptions() PipelineOptions {
	return PipelineOptions{Reduce: core.DefaultReduceOptions()}
}

// Capture performs pipeline step 1 only.
func Capture(a *App, pattern Pattern, opts CaptureOptions) (*CaptureResult, error) {
	return core.Capture(a, pattern, opts)
}

// CaptureContext is Capture with cancellation: ctx is checked every
// simulation tick.
func CaptureContext(ctx context.Context, a *App, pattern Pattern, opts CaptureOptions) (*CaptureResult, error) {
	return core.CaptureContext(ctx, a, pattern, opts)
}

// Reduce performs pipeline step 2 only.
func Reduce(ds *Dataset, opts ReduceOptions) (Reduction, error) {
	return core.Reduce(ds, opts)
}

// ReduceContext is Reduce with cancellation and a worker pool sized by
// opts.Parallelism (one task per component).
func ReduceContext(ctx context.Context, ds *Dataset, opts ReduceOptions) (Reduction, error) {
	return core.ReduceContext(ctx, ds, opts)
}

// IdentifyDependencies performs pipeline step 3 only.
func IdentifyDependencies(ds *Dataset, red Reduction, opts DepOptions) (*DependencyGraph, error) {
	return core.IdentifyDependencies(ds, red, opts)
}

// IdentifyDependenciesContext is IdentifyDependencies with cancellation
// and a worker pool sized by opts.Parallelism (one task per
// communicating component pair).
func IdentifyDependenciesContext(ctx context.Context, ds *Dataset, red Reduction, opts DepOptions) (*DependencyGraph, error) {
	return core.IdentifyDependenciesContext(ctx, ds, red, opts)
}

// Run executes the full three-step pipeline.
func Run(a *App, pattern Pattern, opts PipelineOptions) (*Artifact, *CaptureResult, error) {
	return core.Run(a, pattern, opts)
}

// RunContext is Run with cancellation: ctx is threaded through all three
// stages, and the PipelineOptions.Parallelism knob sizes the worker
// pools of the analysis stages (0 = GOMAXPROCS).
func RunContext(ctx context.Context, a *App, pattern Pattern, opts PipelineOptions) (*Artifact, *CaptureResult, error) {
	return core.RunContext(ctx, a, pattern, opts)
}

// MarshalArtifact serializes an artifact to a versioned JSON form for
// offline analysis or later RCA comparison.
func MarshalArtifact(a *Artifact) ([]byte, error) {
	return core.MarshalArtifact(a)
}

// UnmarshalArtifact reconstructs an artifact serialized by
// MarshalArtifact.
func UnmarshalArtifact(data []byte) (*Artifact, error) {
	return core.UnmarshalArtifact(data)
}

// NewAutoscaler creates a scaling engine from rules; cooldownTicks is
// the minimum spacing between actions on one component.
func NewAutoscaler(a *App, rules []AutoscaleRule, cooldownTicks int) (*AutoscaleEngine, error) {
	return autoscale.NewEngine(a, rules, cooldownTicks)
}

// CPUScalingPolicy builds the traditional per-component CPU-threshold
// baseline policy.
func CPUScalingPolicy(components []string, up, down float64, maxInstances int) []AutoscaleRule {
	return autoscale.CPUPolicy(components, up, down, maxInstances)
}

// SieveScalingPolicy derives scaling rules from a pipeline artifact: the
// guiding metric is the one appearing most often in Granger relations.
// It returns the rules and the chosen "component/metric" key.
func SieveScalingPolicy(art *Artifact, up, down float64, maxInstances int) ([]AutoscaleRule, string, error) {
	return autoscale.SievePolicy(art, up, down, maxInstances)
}

// NewSLATracker creates a tracker for "p90 latency below thresholdMS",
// sampling one SLA verdict per windowSize observations.
func NewSLATracker(thresholdMS float64, windowSize int) *SLATracker {
	return autoscale.NewSLATracker(thresholdMS, windowSize)
}

// RefineThresholds derives scale-up/scale-down thresholds for a guiding
// metric from a calibration trace of (metric value, latency) pairs
// against an SLA, the paper's iterative refinement (§4.1).
func RefineThresholds(metricValues, latencies []float64, slaMS float64) (up, down float64, err error) {
	return autoscale.RefineThresholds(metricValues, latencies, slaMS)
}

// Server is the sieved daemon: sharded line-protocol ingestion over HTTP
// plus an online pipeline that re-runs Reduce + Granger over a sliding
// window of the ingested data and serves the latest Artifact (with the
// live autoscaling signal) from /artifact.
type Server = server.Server

// ServerOptions configures a Server: shard count, sampling grid, window
// width, recompute cadence, analysis parallelism, optional topology —
// durability: DataDir enables the WAL + compressed-block storage
// engine, Retention bounds its disk use, Fsync picks the WAL sync
// policy ("always", "interval", "never"), CompactInterval/
// CompactMaxBlockBytes control the background block compactor, and
// Downsample adds 5m/1h summaries for coarse-step aggregated queries
// over long retention — and the incremental online
// engine: Incremental carries window-cache + Granger-cache state across
// pipeline cycles (tail-only store reads, bit-identical results),
// WarmStart seeds clustering from the previous cycle and skips the
// silhouette sweep while quality holds, FullRecomputeEvery periodically
// drops all carried state as a self-heal.
type ServerOptions = server.Options

// ServerClient speaks the sieved HTTP API. It implements the store's
// Write contract, so a MetricCollector pointed at a client ships scrapes
// to a remote server over real HTTP.
type ServerClient = server.Client

// ServerRunInfo summarizes one completed online pipeline run.
type ServerRunInfo = server.RunInfo

// NewServer creates a sieved server with its backing sharded store. Use
// Server.ListenAndServe to serve (it also starts the online pipeline
// driver), or Server.Handler to embed it in an existing HTTP server —
// then start the driver with Server.Start or trigger runs via POST /run.
// With opts.DataDir set, NewServer recovers the previous life's data
// (block files plus WAL replay) before returning; embedders must then
// call Server.Close on shutdown (ListenAndServe does it itself).
func NewServer(opts ServerOptions) (*Server, error) {
	return server.New(opts)
}

// Serve is the one-call entry point: it builds a server, starts the
// online pipeline driver, and serves HTTP on addr until ctx is done.
func Serve(ctx context.Context, addr string, opts ServerOptions) error {
	s, err := server.New(opts)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, addr)
}

// NewServerClient creates a client for the sieved server at baseURL
// (e.g. "http://127.0.0.1:8086").
func NewServerClient(baseURL string) *ServerClient {
	return server.NewClient(baseURL)
}

// RangeQuery is one query-engine request against a store or a sieved
// server: every series whose component and metric match the globs
// ('*' any run, '?' any byte), restricted to [From, To), either raw or
// aggregated per StepMS bucket (Agg selects min/max/avg/sum/count/rate).
// Served by GET /query_range and ServerClient.QueryRange; locally by any
// store's QueryRange/QueryMatch.
type RangeQuery = tsdb.RangeQuery

// SeriesResult is one matched series' answer to a RangeQuery: raw
// points, or one point per non-empty step bucket (T = bucket start).
type SeriesResult = tsdb.SeriesResult

// MetricAgg selects the per-bucket aggregation of a RangeQuery.
type MetricAgg = tsdb.Agg

// Aggregation functions for RangeQuery.Agg.
const (
	// AggNone returns raw points (no bucketing).
	AggNone = tsdb.AggNone
	// AggMin is the per-bucket minimum value.
	AggMin = tsdb.AggMin
	// AggMax is the per-bucket maximum value.
	AggMax = tsdb.AggMax
	// AggAvg is the per-bucket arithmetic mean.
	AggAvg = tsdb.AggAvg
	// AggSum is the per-bucket sum.
	AggSum = tsdb.AggSum
	// AggCount is the per-bucket point count.
	AggCount = tsdb.AggCount
	// AggRate is the per-bucket per-second rate of change.
	AggRate = tsdb.AggRate
)

// ParseMetricAgg parses an aggregation name ("min", "max", "avg", "sum",
// "count", "rate"; "" and "raw" mean AggNone) as the /query_range agg
// parameter does.
func ParseMetricAgg(s string) (MetricAgg, error) {
	return tsdb.ParseAgg(s)
}

// MetricSample is one decoded observation: (component, metric, T, V).
// It is what ServerClient.WriteSamples encodes into line protocol and
// what ServerClient.WriteRemote groups into a Prometheus remote-write
// request.
type MetricSample = tsdb.Sample

// MetricPoint is one stored (T, V) observation of a series, as returned
// by ServerClient.Query.
type MetricPoint = tsdb.Point

// MetricRegistry holds the exported metrics of one component (returned
// by App.Registry).
type MetricRegistry = metrics.Registry

// MetricWriter accepts line-protocol payloads: an in-process store or a
// ServerClient shipping over HTTP.
type MetricWriter = tsdb.Writer

// MetricCollector scrapes registries and ships the readings to a
// MetricWriter, mirroring the paper's Telegraf -> InfluxDB pipeline.
type MetricCollector = metrics.Collector

// NewMetricCollector creates a collector shipping scrapes from the given
// registries to w.
func NewMetricCollector(w MetricWriter, registries ...*MetricRegistry) (*MetricCollector, error) {
	return metrics.NewCollector(w, registries...)
}

// DriveLoad replays a load pattern against an application while scraping
// its registries through coll every scrapeEvery ticks (<= 0 means every
// tick) — pointed at a ServerClient, this drives a sieved server end to
// end over real HTTP.
func DriveLoad(ctx context.Context, a *App, p Pattern, coll *MetricCollector, scrapeEvery int) error {
	return loadgen.DriveCollector(ctx, a, p, coll, scrapeEvery)
}

// MetricProbe reads one metric as an instantaneous signal, converting
// counters to per-read deltas — the value stream scaling rules see.
type MetricProbe = autoscale.Probe

// NewMetricProbe creates a probe for the metric on the given registry.
func NewMetricProbe(reg *MetricRegistry, metric string) *MetricProbe {
	return autoscale.NewProbe(reg, metric)
}

// Diagnose runs the five-step RCA over the artifacts of a correct and a
// faulty application version.
func Diagnose(correct, faulty *Artifact, opts RCAOptions) (*RCAReport, error) {
	return rca.Diagnose(correct, faulty, opts)
}

// Tracer is a sysdig-like syscall event sink: bounded ring buffer, user
// filter, binary encoding per event. Attach one to an App to observe its
// network syscalls.
type Tracer = trace.Tracer

// TraceEvent is one captured syscall with process context.
type TraceEvent = trace.Event

// PacketCapture is a tcpdump-like per-packet capturer (addresses only,
// no process context).
type PacketCapture = trace.PacketCapture

// CallGraph is the directed component communication graph.
type CallGraph = callgraph.Graph

// NewTracer creates a syscall tracer with the given ring capacity
// (<= 0 uses the default) and an optional filter (nil keeps everything).
func NewTracer(capacity int, filter func(*TraceEvent) bool) *Tracer {
	if filter == nil {
		return trace.NewTracer(capacity, nil)
	}
	return trace.NewTracer(capacity, trace.Filter(filter))
}

// NewPacketCapture creates a packet capturer with the given snap length
// (<= 0 uses tcpdump's classic default).
func NewPacketCapture(snapLen int) *PacketCapture {
	return trace.NewPacketCapture(snapLen)
}

// CallGraphFromSyscalls builds the call graph from a syscall event
// stream using the process context carried by accept/connect events.
func CallGraphFromSyscalls(events []TraceEvent) *CallGraph {
	return callgraph.FromSyscallEvents(events)
}

// CallGraphFromPackets builds the call graph from packet (src, dst)
// pairs plus an externally supplied address-to-component map; unmapped
// endpoints are dropped (the packet-capture context gap of §3.1).
func CallGraphFromPackets(pairs map[[2]string]int, addrToComponent map[string]string) *CallGraph {
	return callgraph.FromPacketPairs(pairs, addrToComponent)
}
