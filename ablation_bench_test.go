package sieve

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/kshape"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// bidirectional-edge filter, metric-name seeding of k-Shape, the
// variance pre-filter, and the discretization interval. Each reports the
// metric that the design choice trades off.

// ablationCapture runs one small ShareLatex capture shared by the
// ablation benches (rebuilt per bench to keep them independent).
func ablationCapture(b *testing.B) *core.CaptureResult {
	b.Helper()
	app, err := NewShareLatex(42)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Capture(app, loadgen.Random(1, 200, 200, 2500), core.CaptureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationBidirectionalFilter compares the dependency graph
// with and without the §3.3 bidirectional (confounder) filter. The
// filter's value: edges dropped as spurious do not reach the autoscaler
// or the RCA engine.
func BenchmarkAblationBidirectionalFilter(b *testing.B) {
	res := ablationCapture(b)
	red, err := core.Reduce(res.Dataset, core.DefaultReduceOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		filtered, err := core.IdentifyDependencies(res.Dataset, red, core.DepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		unfiltered, err := core.IdentifyDependencies(res.Dataset, red, core.DepOptions{KeepBidirectional: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(filtered.Edges)), "edges_filtered")
			b.ReportMetric(float64(len(unfiltered.Edges)), "edges_unfiltered")
			b.ReportMetric(float64(filtered.Bidirectional), "spurious_dropped")
		}
	}
}

// BenchmarkAblationNameSeeding compares k-Shape initialized from metric
// names (the paper's §3.2 optimization) against random initialization.
// The claim to verify: seeding speeds convergence without changing the
// outcome quality.
func BenchmarkAblationNameSeeding(b *testing.B) {
	res := ablationCapture(b)
	for i := 0; i < b.N; i++ {
		var seededIters, randomIters int
		for _, comp := range res.Dataset.Components() {
			var names []string
			var series [][]float64
			for _, name := range res.Dataset.MetricNames(comp) {
				vals := res.Dataset.Get(comp, name).Values
				names = append(names, name)
				series = append(series, vals)
			}
			if len(series) < 4 {
				continue
			}
			k := 4
			seeded, err := kshape.Cluster(series, kshape.Options{K: k, InitialAssignments: kshape.NameSeeds(names, k)})
			if err != nil {
				b.Fatal(err)
			}
			random, err := kshape.Cluster(series, kshape.Options{K: k, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			seededIters += seeded.Iterations
			randomIters += random.Iterations
		}
		if i == b.N-1 {
			b.ReportMetric(float64(seededIters), "iters_name_seeded")
			b.ReportMetric(float64(randomIters), "iters_random_init")
		}
	}
}

// BenchmarkAblationVarianceFilter compares reduction with the paper's
// 0.002 variance pre-filter against reduction with the filter disabled
// (threshold pushed to ~0). The filter's value: constants and dead
// series never reach the clustering stage.
func BenchmarkAblationVarianceFilter(b *testing.B) {
	res := ablationCapture(b)
	for i := 0; i < b.N; i++ {
		withFilter, err := core.Reduce(res.Dataset, core.DefaultReduceOptions())
		if err != nil {
			b.Fatal(err)
		}
		noFilterOpts := core.DefaultReduceOptions()
		noFilterOpts.VarianceThreshold = 1e-12
		withoutFilter, err := core.Reduce(res.Dataset, noFilterOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			filtered := 0
			for _, cr := range withFilter {
				filtered += len(cr.Filtered)
			}
			b.ReportMetric(float64(filtered), "metrics_prefiltered")
			b.ReportMetric(float64(withFilter.TotalAfter()), "reps_with_filter")
			b.ReportMetric(float64(withoutFilter.TotalAfter()), "reps_without_filter")
		}
	}
}

// BenchmarkAblationDiscretization compares the paper's 500 ms grid with
// the 2 s grid of the original k-Shape work (§3.2 argues the finer grid
// improves cross-component matching). Reported: dependency edges found
// on each grid for the same run.
func BenchmarkAblationDiscretization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		edges := map[int64]int{}
		for _, stepMS := range []int64{500, 2000} {
			app, err := NewShareLatex(42)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Capture(app, loadgen.Random(1, 200, 200, 2500), core.CaptureOptions{})
			if err != nil {
				b.Fatal(err)
			}
			// Re-grid the capture at the coarser interval.
			ds, err := core.DatasetFromDB(res.DB, "sharelatex", stepMS, res.Dataset.Start, res.Dataset.End)
			if err != nil {
				b.Fatal(err)
			}
			ds.CallGraph = res.Dataset.CallGraph
			red, err := core.Reduce(ds, core.DefaultReduceOptions())
			if err != nil {
				b.Fatal(err)
			}
			graph, err := core.IdentifyDependencies(ds, red, core.DepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			edges[stepMS] = len(graph.Edges)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(edges[500]), "edges_500ms_grid")
			b.ReportMetric(float64(edges[2000]), "edges_2s_grid")
		}
	}
}
