// Command sieved is the long-running Sieve server: sharded line-protocol
// ingestion over HTTP plus an online pipeline that re-runs metric
// reduction and Granger dependency analysis over a sliding window of the
// ingested data, keeping the autoscaling signal fresh.
//
// Usage:
//
//	sieved [-addr :8086] [-shards N] [-window 240s] [-interval 30s]
//	       [-step 500ms] [-app NAME] [-parallelism N]
//	       [-query-parallelism N] [-data-dir DIR] [-retention 24h]
//	       [-fsync interval]
//
// With -data-dir the store is durable: writes go through a per-shard
// write-ahead log and are periodically sealed into Gorilla-compressed
// block files, so a restarted sieved serves the same data it was killed
// with. An empty -data-dir (the default) keeps the pure in-memory store.
//
// Quickstart against a running instance:
//
//	curl -X POST --data-binary 'web,metric=cpu value=0.5 500' http://localhost:8086/write
//	curl http://localhost:8086/stats
//	curl 'http://localhost:8086/query_range?component=web*&agg=max&step=60000'
//	curl http://localhost:8086/artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sieve-microservices/sieve"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	shards := flag.Int("shards", 0, "store shard count (0 = GOMAXPROCS)")
	window := flag.Duration("window", 240*time.Second, "sliding analysis window")
	interval := flag.Duration("interval", 30*time.Second, "pipeline recompute cadence")
	step := flag.Duration("step", 500*time.Millisecond, "analysis sampling grid")
	appName := flag.String("app", "sieved", "application label on artifacts")
	parallelism := flag.Int("parallelism", 0, "analysis worker-pool size (0 = GOMAXPROCS)")
	queryParallelism := flag.Int("query-parallelism", 0, "per-series fan-out of /query_range matcher reads (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	retention := flag.Duration("retention", 0, "drop on-disk blocks older than this much ingest time (0 = keep forever)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
	flushInterval := flag.Duration("flush-interval", 0, "block flush cadence (0 = default 60s)")
	flag.Parse()

	opts := sieve.ServerOptions{
		AppName:          *appName,
		Shards:           *shards,
		StepMS:           step.Milliseconds(),
		WindowMS:         window.Milliseconds(),
		Interval:         *interval,
		Parallelism:      *parallelism,
		QueryParallelism: *queryParallelism,
		DataDir:          *dataDir,
		Retention:        *retention,
		Fsync:            *fsync,
		FlushInterval:    *flushInterval,
	}
	srv, err := sieve.NewServer(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	durability := "in-memory"
	if srv.Store().Durable() {
		durability = fmt.Sprintf("durable at %s (fsync %s)", srv.Store().DataDir(), *fsync)
		if pts := srv.Store().Stats().Points; pts > 0 {
			fmt.Printf("recovered %d points from %s\n", pts, *dataDir)
		}
	}
	fmt.Printf("sieved listening on %s (%d shards, window %s, interval %s, %s)\n",
		*addr, srv.Store().NumShards(), *window, *interval, durability)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
