// Command sieved is the long-running Sieve server: sharded line-protocol
// ingestion over HTTP plus an online pipeline that re-runs metric
// reduction and Granger dependency analysis over a sliding window of the
// ingested data, keeping the autoscaling signal fresh.
//
// Usage:
//
//	sieved [-addr :8086] [-shards N] [-window 240s] [-interval 30s]
//	       [-step 500ms] [-app NAME] [-parallelism N]
//	       [-query-parallelism N] [-data-dir DIR] [-retention 24h]
//	       [-fsync interval] [-compact-interval 5m] [-compact-max-block 64MiB]
//	       [-downsample] [-incremental] [-full-recompute-every N]
//	       [-warm-start] [-warm-resweep-every N]
//	       [-warm-silhouette-tolerance F] [-pprof-addr :6060]
//	       [-self-scrape-interval 15s] [-slow-op-threshold 1s]
//	       [-remote-write-component-label job] [-remote-write-max-bytes N]
//	       [-remote-write-max-samples N] [-remote-write-retry-after 1s]
//	       [-read-header-timeout 10s] [-read-timeout 5m] [-idle-timeout 2m]
//	       [-shutdown-timeout 5s] [-log-level info]
//
// Besides the line-protocol POST /write, sieved accepts Prometheus
// remote write 1.0 on POST /api/v1/write (snappy-compressed protobuf),
// so a real Prometheus (remote_write: url: http://sieved:8086/api/v1/write)
// or any remote-write-speaking agent can feed it directly. Labels map
// deterministically onto sieve's component/metric model: __name__ is the
// metric, the label named by -remote-write-component-label (default
// "job") is the component, and all remaining labels fold into the metric
// name as a sorted {k=v,...} suffix. Oversized requests are rejected
// with 413 (decompressed size over -remote-write-max-bytes, checked
// before allocation) or 429 + Retry-After (over
// -remote-write-max-samples), so a misbehaving sender backs off instead
// of taking the ingest edge down.
//
// With -data-dir the store is durable: writes go through a per-shard
// write-ahead log and are periodically sealed into Gorilla-compressed
// block files, so a restarted sieved serves the same data it was killed
// with. An empty -data-dir (the default) keeps the pure in-memory store.
// A background compactor (cadence -compact-interval, disable with a
// negative value) merges adjacent small blocks into larger ones up to
// -compact-max-block bytes of chunk data each — query results are
// byte-identical before and after. With -downsample it also attaches 5m
// and 1h downsampled summaries that coarse-step aggregated /query_range
// requests (min/max/count/rate with step a multiple of the resolution)
// answer without touching chunk data, keeping month-window queries over
// long -retention affordable.
//
// With -incremental the online pipeline carries state across cycles:
// each run queries only the window's new tail and rolls a ring-buffered
// bucket cache forward, and Granger tests on unchanged series are served
// from a content-fingerprint cache — bit-identical to recomputing, as
// long as writes do not land behind the already-analyzed frontier
// (-full-recompute-every N self-heals from such late data every N
// cycles). -warm-start additionally seeds clustering from the previous
// cycle's assignments and skips the silhouette sweep while quality holds
// (an approximation, hence a separate opt-in).
//
// sieved observes itself: GET /metrics serves the Prometheus text
// exposition of its internal telemetry (ingest, WAL, checkpoint, query,
// and pipeline instruments), GET /healthz and /readyz are the liveness
// and readiness probes, and GET /debug/traces holds the slowest recent
// requests and pipeline cycles (retained past -slow-op-threshold). With
// -self-scrape-interval the same telemetry is also written into
// sieved's own store under the reserved "sieve" component every
// interval — queryable like any ingested series:
//
//	curl 'http://localhost:8086/query_range?component=sieve&metric=wal_fsync*'
//
// While self-scrape is on, /write rejects the "sieve" component and
// the analysis pipeline ignores it (artifacts are unchanged).
//
// -pprof-addr serves net/http/pprof on a side listener so the online
// loop can be profiled in place:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//
// Quickstart against a running instance:
//
//	curl -X POST --data-binary 'web,metric=cpu value=0.5 500' http://localhost:8086/write
//	curl http://localhost:8086/stats
//	curl 'http://localhost:8086/query_range?component=web*&agg=max&step=60000'
//	curl http://localhost:8086/artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sieve-microservices/sieve"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	shards := flag.Int("shards", 0, "store shard count (0 = GOMAXPROCS)")
	window := flag.Duration("window", 240*time.Second, "sliding analysis window")
	interval := flag.Duration("interval", 30*time.Second, "pipeline recompute cadence")
	step := flag.Duration("step", 500*time.Millisecond, "analysis sampling grid")
	appName := flag.String("app", "sieved", "application label on artifacts")
	parallelism := flag.Int("parallelism", 0, "analysis worker-pool size (0 = GOMAXPROCS)")
	queryParallelism := flag.Int("query-parallelism", 0, "per-series fan-out of /query_range matcher reads (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	retention := flag.Duration("retention", 0, "drop on-disk blocks older than this much ingest time (0 = keep forever)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
	flushInterval := flag.Duration("flush-interval", 0, "block flush cadence (0 = default 60s)")
	compactInterval := flag.Duration("compact-interval", 0, "block compaction cadence (0 = default 5m, negative = disabled)")
	compactMaxBlock := flag.Int64("compact-max-block", 0, "merged-block chunk-byte cap (0 = default 64 MiB)")
	downsample := flag.Bool("downsample", false, "build 5m/1h downsampled summaries on compacted blocks for coarse-step queries")
	incremental := flag.Bool("incremental", false, "carry pipeline state across cycles: tail-only window queries + Granger result cache")
	fullRecomputeEvery := flag.Int("full-recompute-every", 0, "with -incremental, drop all carried state and recompute from scratch every N cycles (0 = never)")
	warmStart := flag.Bool("warm-start", false, "seed clustering from the previous cycle and skip the silhouette sweep while quality holds")
	warmResweepEvery := flag.Int("warm-resweep-every", 0, "with -warm-start, force a full silhouette sweep every N cycles (0 = default 10, negative = never on cadence alone)")
	warmSilhouetteTolerance := flag.Float64("warm-silhouette-tolerance", 0, "with -warm-start, allowed silhouette drop vs the last full sweep before re-sweeping (0 = default 0.05)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	selfScrapeInterval := flag.Duration("self-scrape-interval", 0, "write own telemetry into the store under the reserved \"sieve\" component every interval (0 = disabled)")
	slowOpThreshold := flag.Duration("slow-op-threshold", 0, "retain requests and pipeline cycles slower than this in /debug/traces (0 = default 1s, negative = disabled)")
	remoteWriteComponentLabel := flag.String("remote-write-component-label", "", "Prometheus label mapped to sieve's component on /api/v1/write (empty = default \"job\")")
	remoteWriteMaxBytes := flag.Int64("remote-write-max-bytes", 0, "decompressed-size cap per /api/v1/write request, rejected with 413 (0 = default 64 MiB)")
	remoteWriteMaxSamples := flag.Int("remote-write-max-samples", 0, "sample cap per /api/v1/write request, rejected with 429 + Retry-After (0 = default 1000000)")
	remoteWriteRetryAfter := flag.Duration("remote-write-retry-after", 0, "backoff advertised by the 429 Retry-After header (0 = default 1s)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 0, "HTTP header read timeout, the slowloris bound (0 = default 10s, negative = disabled)")
	readTimeout := flag.Duration("read-timeout", 0, "HTTP full-request read timeout (0 = default 5m, negative = disabled)")
	idleTimeout := flag.Duration("idle-timeout", 0, "HTTP keep-alive idle timeout (0 = default 2m, negative = disabled)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 0, "graceful drain bound before in-flight connections are force-closed (0 = default 5s)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "error: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	opts := sieve.ServerOptions{
		AppName:                 *appName,
		Shards:                  *shards,
		StepMS:                  step.Milliseconds(),
		WindowMS:                window.Milliseconds(),
		Interval:                *interval,
		Parallelism:             *parallelism,
		QueryParallelism:        *queryParallelism,
		DataDir:                 *dataDir,
		Retention:               *retention,
		Fsync:                   *fsync,
		FlushInterval:           *flushInterval,
		CompactInterval:         *compactInterval,
		CompactMaxBlockBytes:    *compactMaxBlock,
		Downsample:              *downsample,
		Incremental:             *incremental,
		FullRecomputeEvery:      *fullRecomputeEvery,
		WarmStart:               *warmStart,
		WarmResweepEvery:        *warmResweepEvery,
		WarmSilhouetteTolerance: *warmSilhouetteTolerance,
		SelfScrapeInterval:      *selfScrapeInterval,
		SlowOpThreshold:         *slowOpThreshold,

		RemoteWriteComponentLabel: *remoteWriteComponentLabel,
		RemoteWriteMaxBytes:       *remoteWriteMaxBytes,
		RemoteWriteMaxSamples:     *remoteWriteMaxSamples,
		RemoteWriteRetryAfter:     *remoteWriteRetryAfter,
		ReadHeaderTimeout:         *readHeaderTimeout,
		ReadTimeout:               *readTimeout,
		IdleTimeout:               *idleTimeout,
		ShutdownTimeout:           *shutdownTimeout,
	}
	srv, err := sieve.NewServer(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// pprof registers on http.DefaultServeMux; the API runs on its
		// own mux, so the profiling surface only exists on this side
		// listener and is never exposed on -addr.
		go func() {
			fmt.Printf("pprof listening on %s (/debug/pprof/)\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof listener error:", err)
			}
		}()
	}

	durability := "in-memory"
	if srv.Store().Durable() {
		durability = fmt.Sprintf("durable at %s (fsync %s)", srv.Store().DataDir(), *fsync)
		if pts := srv.Store().Stats().Points; pts > 0 {
			fmt.Printf("recovered %d points from %s\n", pts, *dataDir)
		}
	}
	engine := "batch recompute"
	if *incremental {
		engine = "incremental"
		if *warmStart {
			engine = "incremental+warm-start"
		}
	} else if *warmStart {
		engine = "warm-start"
	}
	fmt.Printf("sieved listening on %s (%d shards, window %s, interval %s, %s, %s pipeline)\n",
		*addr, srv.Store().NumShards(), *window, *interval, durability, engine)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
