// Command sieved is the long-running Sieve server: sharded line-protocol
// ingestion over HTTP plus an online pipeline that re-runs metric
// reduction and Granger dependency analysis over a sliding window of the
// ingested data, keeping the autoscaling signal fresh.
//
// Usage:
//
//	sieved [-addr :8086] [-shards N] [-window 240s] [-interval 30s]
//	       [-step 500ms] [-app NAME] [-parallelism N]
//
// Quickstart against a running instance:
//
//	curl -X POST --data-binary 'web,metric=cpu value=0.5 500' http://localhost:8086/write
//	curl http://localhost:8086/stats
//	curl http://localhost:8086/artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sieve-microservices/sieve"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	shards := flag.Int("shards", 0, "store shard count (0 = GOMAXPROCS)")
	window := flag.Duration("window", 240*time.Second, "sliding analysis window")
	interval := flag.Duration("interval", 30*time.Second, "pipeline recompute cadence")
	step := flag.Duration("step", 500*time.Millisecond, "analysis sampling grid")
	appName := flag.String("app", "sieved", "application label on artifacts")
	parallelism := flag.Int("parallelism", 0, "analysis worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	opts := sieve.ServerOptions{
		AppName:     *appName,
		Shards:      *shards,
		StepMS:      step.Milliseconds(),
		WindowMS:    window.Milliseconds(),
		Interval:    *interval,
		Parallelism: *parallelism,
	}
	srv, err := sieve.NewServer(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("sieved listening on %s (%d shards, window %s, interval %s)\n",
		*addr, srv.Store().NumShards(), *window, *interval)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
