// Command experiments regenerates the paper's evaluation tables and
// figures (§6) against the simulated substrate and prints them in a
// paper-style text form.
//
// Usage:
//
//	experiments [-run all|table1|table3|table4|table5|figure3..figure8] [-quick] [-seed N] [-parallelism N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sieve-microservices/sieve/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (all, "+strings.Join(experiments.IDs(), ", "))
	quick := flag.Bool("quick", false, "use the small smoke-test configuration")
	seed := flag.Int64("seed", 42, "simulation seed")
	parallelism := flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS); artifacts are identical at any setting")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	suite := experiments.NewSuite(cfg)

	var (
		results []*experiments.Result
		err     error
	)
	start := time.Now()
	if strings.EqualFold(*run, "all") {
		results, err = suite.All()
	} else {
		var r *experiments.Result
		r, err = suite.ByID(*run)
		if r != nil {
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("==== %s: %s ====\n%s\n", r.ID, r.Title, r.Text)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("regenerated %d artifact(s) in %s\n", len(results), time.Since(start).Round(time.Millisecond))
}
