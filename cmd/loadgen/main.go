// Command loadgen generates workload patterns (WorldCup-shaped, random,
// constant, or step) and either prints them as CSV or replays them
// against a bundled application simulator, reporting per-tick entry
// latency and utilization.
//
// Usage:
//
//	loadgen -kind worldcup -ticks 7200                 # print CSV
//	loadgen -kind random -drive sharelatex -ticks 600  # replay and report
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sieve-microservices/sieve"
)

func main() {
	kind := flag.String("kind", "worldcup", "pattern kind: worldcup, random, constant, steps")
	ticks := flag.Int("ticks", 7200, "pattern length in 500ms ticks")
	seed := flag.Int64("seed", 42, "generator seed")
	base := flag.Float64("base", 150, "base requests/second")
	peak := flag.Float64("peak", 2600, "peak requests/second")
	drive := flag.String("drive", "", "replay against an app: sharelatex or openstack")
	flag.Parse()

	if err := run(*kind, *ticks, *seed, *base, *peak, *drive); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(kind string, ticks int, seed int64, base, peak float64, drive string) error {
	var pattern sieve.Pattern
	switch kind {
	case "worldcup":
		pattern = sieve.WorldCupLoad(seed, ticks, base, peak)
	case "random":
		pattern = sieve.RandomLoad(seed, ticks, base, peak)
	case "constant":
		pattern = sieve.ConstantLoad(base, ticks)
	case "steps":
		pattern = stepPattern(base, peak, ticks)
	default:
		return fmt.Errorf("unknown pattern kind %q", kind)
	}

	if drive == "" {
		fmt.Println("tick,rps")
		for i, v := range pattern {
			fmt.Printf("%d,%.2f\n", i, v)
		}
		return nil
	}

	var (
		app *sieve.App
		err error
	)
	switch drive {
	case "sharelatex":
		app, err = sieve.NewShareLatex(seed)
	case "openstack":
		app, err = sieve.NewOpenStack(seed, false)
	default:
		return fmt.Errorf("unknown app %q", drive)
	}
	if err != nil {
		return err
	}

	fmt.Println("tick,rps,entry_latency_ms,max_utilization")
	comps := app.Components()
	for i, rps := range pattern {
		app.Step(rps)
		maxUtil := 0.0
		for _, c := range comps {
			if u := app.Utilization(c); u > maxUtil {
				maxUtil = u
			}
		}
		fmt.Printf("%d,%.1f,%.1f,%.3f\n", i, rps, app.EntryLatencyMS(), maxUtil)
	}
	return nil
}

func stepPattern(low, high float64, ticks int) sieve.Pattern {
	p := make(sieve.Pattern, ticks)
	for i := range p {
		if (i/60)%2 == 0 {
			p[i] = low
		} else {
			p[i] = high
		}
	}
	return p
}
