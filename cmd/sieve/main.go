// Command sieve runs the full three-step pipeline against one of the
// bundled application simulators and prints the reduction summary and
// the inferred dependency graph.
//
// Usage:
//
//	sieve [-app sharelatex|openstack] [-faulty] [-ticks N] [-seed N] [-parallelism N] [-dot] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sieve-microservices/sieve"
)

func main() {
	appName := flag.String("app", "sharelatex", "application to analyze (sharelatex or openstack)")
	faulty := flag.Bool("faulty", false, "openstack only: activate Launchpad bug #1533942")
	ticks := flag.Int("ticks", 480, "load duration in 500ms ticks")
	seed := flag.Int64("seed", 42, "simulation seed")
	dot := flag.Bool("dot", false, "print the dependency graph in Graphviz DOT format")
	verbose := flag.Bool("v", false, "print every metric-level edge")
	save := flag.String("save", "", "write the artifact as JSON to this path")
	parallelism := flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS); results are identical at any setting")
	flag.Parse()

	if err := run(*appName, *faulty, *ticks, *seed, *dot, *verbose, *save, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(appName string, faulty bool, ticks int, seed int64, dot, verbose bool, save string, parallelism int) error {
	var (
		app *sieve.App
		err error
	)
	switch appName {
	case "sharelatex":
		app, err = sieve.NewShareLatex(seed)
	case "openstack":
		app, err = sieve.NewOpenStack(seed, faulty)
	default:
		return fmt.Errorf("unknown app %q (sharelatex or openstack)", appName)
	}
	if err != nil {
		return err
	}

	pattern := sieve.RandomLoad(seed+1, ticks, 150, 2000)
	opts := sieve.DefaultPipelineOptions()
	opts.Parallelism = parallelism
	artifact, capture, err := sieve.Run(app, pattern, opts)
	if err != nil {
		return err
	}

	fmt.Printf("application: %s (%d components)\n", artifact.App, len(artifact.Dataset.Components()))
	fmt.Printf("capture: %d metrics over %d ticks (%d points stored, %d KB wire)\n",
		artifact.Dataset.TotalMetrics(), ticks,
		capture.DB.Stats().Points, capture.DB.Stats().NetworkInBytes/1024)
	fmt.Printf("reduction: %d -> %d metrics (%.1fx)\n",
		artifact.Reduction.TotalBefore(), artifact.Reduction.TotalAfter(),
		float64(artifact.Reduction.TotalBefore())/float64(artifact.Reduction.TotalAfter()))

	for _, comp := range artifact.Dataset.Components() {
		cr := artifact.Reduction[comp]
		fmt.Printf("  %-18s %3d metrics -> %d clusters (silhouette %.2f)\n",
			comp, cr.Total, len(cr.Clusters), cr.Silhouette)
	}

	fmt.Printf("\ndependencies: %d edges across %d component pairs (%d tested, %d bidirectional filtered)\n",
		len(artifact.Graph.Edges), len(artifact.Graph.ComponentPairs()),
		artifact.Graph.Tested, artifact.Graph.Bidirectional)
	if verbose {
		for _, e := range artifact.Graph.Edges {
			fmt.Printf("  %s/%s -> %s/%s (lag %dms, p=%.2g)\n",
				e.From, e.FromMetric, e.To, e.ToMetric, e.LagMS, e.PValue)
		}
	}
	key, n := artifact.Graph.MostFrequentMetric()
	fmt.Printf("most frequent metric in relations: %s (%d relations)\n", key, n)

	if dot {
		fmt.Println("\n" + artifact.Graph.DOT())
	}
	if save != "" {
		data, err := sieve.MarshalArtifact(artifact)
		if err != nil {
			return err
		}
		if err := os.WriteFile(save, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("artifact written to %s (%d KB)\n", save, len(data)/1024)
	}
	return nil
}
